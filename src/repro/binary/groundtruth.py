"""Ground-truth labels for a generated binary.

The synthetic compiler knows exactly what every byte of the text section
is; the evaluation harness compares disassembler output against these
labels.  (The original paper had to reconstruct ground truth from a
second, metadata-rich build of each binary; the synthetic setting gives
it to us exactly.)

Labels are per byte of the text section:

* ``INSN_START``  -- first byte of a real instruction,
* ``INSN_INTERIOR`` -- continuation byte of a real instruction,
* ``DATA`` -- embedded data (jump tables, literals, strings),
* ``PADDING`` -- alignment filler between functions; by convention
  padding counts as neither code nor data for accuracy metrics (tools
  are not penalized either way), matching common practice.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class ByteKind(enum.IntEnum):
    INSN_START = 0
    INSN_INTERIOR = 1
    DATA = 2
    PADDING = 3


@dataclass(frozen=True)
class FunctionInfo:
    """Ground-truth extent of one generated function."""

    name: str
    entry: int
    end: int   # one past the last byte belonging to the function

    def __contains__(self, offset: int) -> bool:
        return self.entry <= offset < self.end


@dataclass
class GroundTruth:
    """Exact labels for every byte of a text section.

    Offsets are relative to the start of the text section.
    """

    size: int
    labels: bytearray = field(default=None)  # type: ignore[assignment]
    functions: list[FunctionInfo] = field(default_factory=list)
    jump_tables: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.labels is None:
            self.labels = bytearray([ByteKind.PADDING] * self.size)
        if len(self.labels) != self.size:
            raise ValueError("label array size mismatch")

    # ------------------------------------------------------------------
    # Label writing (used by the generator)
    # ------------------------------------------------------------------

    def mark_instruction(self, offset: int, length: int) -> None:
        self.labels[offset] = ByteKind.INSN_START
        for i in range(offset + 1, offset + length):
            self.labels[i] = ByteKind.INSN_INTERIOR

    def mark_data(self, start: int, end: int) -> None:
        for i in range(start, end):
            self.labels[i] = ByteKind.DATA

    def mark_padding(self, start: int, end: int) -> None:
        for i in range(start, end):
            self.labels[i] = ByteKind.PADDING

    def add_function(self, name: str, entry: int, end: int) -> None:
        self.functions.append(FunctionInfo(name, entry, end))

    def add_jump_table(self, start: int, end: int) -> None:
        self.jump_tables.append((start, end))
        self.mark_data(start, end)

    # ------------------------------------------------------------------
    # Queries (used by the evaluation harness)
    # ------------------------------------------------------------------

    @property
    def instruction_starts(self) -> set[int]:
        return {i for i, kind in enumerate(self.labels)
                if kind == ByteKind.INSN_START}

    @property
    def code_bytes(self) -> int:
        return sum(1 for k in self.labels
                   if k in (ByteKind.INSN_START, ByteKind.INSN_INTERIOR))

    @property
    def data_bytes(self) -> int:
        return sum(1 for k in self.labels if k == ByteKind.DATA)

    @property
    def padding_bytes(self) -> int:
        return sum(1 for k in self.labels if k == ByteKind.PADDING)

    @property
    def function_entries(self) -> set[int]:
        return {f.entry for f in self.functions}

    def kind_at(self, offset: int) -> ByteKind:
        return ByteKind(self.labels[offset])

    def is_code(self, offset: int) -> bool:
        return self.labels[offset] in (ByteKind.INSN_START,
                                       ByteKind.INSN_INTERIOR)

    def data_regions(self) -> list[tuple[int, int]]:
        """Maximal [start, end) runs labeled DATA."""
        return self._runs(ByteKind.DATA)

    def padding_regions(self) -> list[tuple[int, int]]:
        return self._runs(ByteKind.PADDING)

    def _runs(self, kind: ByteKind) -> list[tuple[int, int]]:
        runs = []
        start = None
        for i, label in enumerate(self.labels):
            if label == kind and start is None:
                start = i
            elif label != kind and start is not None:
                runs.append((start, i))
                start = None
        if start is not None:
            runs.append((start, self.size))
        return runs

    # ------------------------------------------------------------------
    # Serialization (JSON sidecar, kept separate from the binary)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "size": self.size,
            "labels": self.labels.hex(),
            "functions": [[f.name, f.entry, f.end] for f in self.functions],
            "jump_tables": list(self.jump_tables),
        })

    @classmethod
    def from_json(cls, text: str) -> GroundTruth:
        raw = json.loads(text)
        gt = cls(size=raw["size"], labels=bytearray.fromhex(raw["labels"]))
        gt.functions = [FunctionInfo(n, e, x) for n, e, x in raw["functions"]]
        gt.jump_tables = [tuple(t) for t in raw["jump_tables"]]
        return gt
