"""Bounded job queue feeding a persistent process worker pool.

The serving layer's execution engine.  Requests become
:class:`~repro.serve.protocol.JobRequest` values on a bounded FIFO
queue; a dispatcher task drains the queue into **micro-batches** that
run on a persistent :class:`~concurrent.futures.ProcessPoolExecutor`
(the same worker-reuse machinery as the parallel evaluation driver:
each worker process keeps one warm
:class:`~repro.core.disassembler.Disassembler` per distinct config via
:func:`repro.eval.parallel.disassembler_for` and loads models from the
on-disk cache instead of retraining).

Three service properties:

* **Backpressure** -- a full queue rejects immediately with
  :class:`QueueFullError` carrying a ``Retry-After`` hint derived from
  observed job latency, instead of letting latency grow unboundedly.
* **Deadlines** -- every job has an absolute deadline.  A job whose
  deadline passes while still queued is *cancelled*: it never reaches
  a worker (counted as ``jobs.cancelled``).  A job that exceeds its
  deadline while running produces a timeout response to the caller
  (``jobs.timed_out``) while the worker's eventual result is dropped.
* **Determinism** -- a batch runs its jobs sequentially in one worker
  through the exact offline code path, so serving output is
  byte-identical to ``repro disasm`` for the same container/config.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..obs.trace import SpanContext, Tracer, current_tracer, set_tracer
from ..perf import PhaseTimings
from .metrics import LatencySummary, ServeMetrics
from .protocol import JobRequest

__all__ = [
    "DrainingError",
    "JobCancelledError",
    "JobFailedError",
    "JobScheduler",
    "JobTimeoutError",
    "QueueFullError",
    "SchedulerConfig",
]


class QueueFullError(Exception):
    """The bounded queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"job queue full, retry after {retry_after:.0f}s")
        self.retry_after = retry_after


class DrainingError(Exception):
    """The scheduler is draining and accepts no new work."""


class JobCancelledError(Exception):
    """The job's deadline passed while it was still queued."""


class JobTimeoutError(Exception):
    """The job's deadline passed while it was running."""


class JobFailedError(Exception):
    """The worker raised while executing the job."""

    def __init__(self, message: str, error_kind: str = "") -> None:
        super().__init__(message)
        self.error_kind = error_kind


# ----------------------------------------------------------------------
# Worker side (module level: must be picklable for the process pool)
# ----------------------------------------------------------------------

#: Worker-process-local snapshots of recent disassemblies, keyed by
#: ``(sha256(blob), config_fingerprint)``.  A ``base`` fingerprint on a
#: later request that lands on the same worker re-disassembles
#: incrementally from the snapshot (a *near hit*: byte-identical
#: output, most of the superset/scoring phases skipped).  Bounded LRU;
#: purely a cache, so a miss just runs cold.
_FACT_BASES: "OrderedDict[tuple[str, str], object]" = OrderedDict()
_FACT_BASE_LIMIT = 8


def _remember_fact_base(key: tuple[str, str], snapshot: object) -> None:
    _FACT_BASES[key] = snapshot
    _FACT_BASES.move_to_end(key)
    while len(_FACT_BASES) > _FACT_BASE_LIMIT:
        _FACT_BASES.popitem(last=False)


def _execute_job(kind: str, blob: bytes, overrides: dict | None,
                 lint_disable: tuple[str, ...],
                 timings: PhaseTimings, base: str = "") -> str:
    """Run one job in a worker; returns the response payload JSON."""
    import hashlib

    from ..binary.container import Binary
    from ..eval.parallel import disassembler_for, repro_spec
    from .protocol import config_from_overrides, config_fingerprint

    binary = Binary.from_bytes(blob)
    spec = repro_spec(config=config_from_overrides(overrides))
    disassembler = disassembler_for(spec)
    config_fp = config_fingerprint(overrides)
    rich = None
    if kind == "disassemble" and base:
        from ..core.engine.incremental import _INCREMENTAL
        snapshot = _FACT_BASES.get((base, config_fp))
        if snapshot is not None:
            from ..core.engine.incremental import disassemble_incremental
            _FACT_BASES.move_to_end((base, config_fp))
            rich, _ = disassemble_incremental(disassembler, snapshot,
                                              binary, timings=timings)
        else:
            _INCREMENTAL.inc(outcome="cold-miss")
    if rich is None:
        rich = disassembler.disassemble_rich(binary, timings=timings)
    if kind == "disassemble":
        from ..core.engine.incremental import FactBase
        _remember_fact_base(
            (hashlib.sha256(blob).hexdigest(), config_fp),
            FactBase.from_run(rich, disassembler.config))
        return rich.result.to_json()
    from ..lint import LintConfig, lint_disassembly
    report = lint_disassembly(rich.result, rich.superset,
                              config=LintConfig(disabled=lint_disable),
                              facts=rich.facts)
    return report.to_json()


def run_batch(items: list[tuple]) -> tuple:
    """Execute one micro-batch of worker items sequentially.

    Returns per-job ``(id, ok, payload-or-message, error_kind)`` tuples
    plus the batch's accumulated phase timings for ``/metrics``.  The
    optional tail of each item is a ``base`` fingerprint (sixth
    element) and a span context dict (seventh).  When any item carries
    a span context, the worker records its spans under a tracer seeded
    from it and appends their dicts as a third return element for the
    coordinator to adopt.
    """
    timings = PhaseTimings()
    results = []
    spans: list[dict] = []
    for job_id, kind, blob, overrides, lint_disable, *rest in items:
        base = rest[0] if rest else ""
        ctx = SpanContext.from_dict(rest[1]) if len(rest) > 1 else None
        tracer = Tracer(parent=ctx) if ctx is not None else None
        previous = set_tracer(tracer) if tracer is not None else None
        try:
            if tracer is not None:
                with tracer.span("job", id=job_id, kind=kind):
                    payload = _execute_job(kind, blob, overrides,
                                           tuple(lint_disable), timings,
                                           base)
            else:
                payload = _execute_job(kind, blob, overrides,
                                       tuple(lint_disable), timings, base)
            results.append((job_id, True, payload, ""))
        except Exception as error:   # noqa: BLE001 -- ferried to the caller
            results.append((job_id, False, str(error),
                            type(error).__name__))
        finally:
            if tracer is not None:
                set_tracer(previous)
                spans.extend(span.to_dict() for span in tracer.drain())
    if spans:
        return results, timings.as_dict(), spans
    return results, timings.as_dict()


def _warm_worker() -> None:
    """Process-pool initializer: load models before the first job."""
    from ..stats.training import default_models

    default_models()


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SchedulerConfig:
    """Queueing and batching knobs.

    Attributes:
        workers: worker processes; ``0`` runs jobs inline on a thread
            (no pool -- used by tests and tiny deployments).
        max_queue: bound on queued (not yet dispatched) jobs; the
            overflow answer is 429 at the HTTP layer.
        batch_max: most jobs dispatched to a worker as one batch.
        batch_window: seconds the dispatcher lingers after the first
            queued job to let a micro-batch fill (0 = no lingering).
    """

    workers: int = 1
    max_queue: int = 64
    batch_max: int = 8
    batch_window: float = 0.0


@dataclass
class _Pending:
    request: JobRequest
    future: asyncio.Future
    abandoned: bool = False
    enqueued: float = field(default_factory=time.monotonic)


def _swallow(future: asyncio.Future) -> None:
    """Consume an abandoned future's exception (silences the warning)."""
    if not future.cancelled():
        future.exception()


class JobScheduler:
    """The bounded queue + dispatcher + worker pool."""

    def __init__(self, config: SchedulerConfig | None = None,
                 metrics: ServeMetrics | None = None) -> None:
        self.config = config if config is not None else SchedulerConfig()
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._queue: deque[_Pending] = deque()
        self._wakeup: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._slots: asyncio.Semaphore | None = None
        self._in_flight = 0
        self._draining = False
        self._job_seconds = LatencySummary()
        #: Strong refs to in-flight batch-completion tasks (asyncio
        #: holds tasks weakly; without this they could be collected).
        self._batch_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Warm models, start the pool and the dispatcher task."""
        loop = asyncio.get_running_loop()
        # Train/load once in the parent: forked workers inherit the
        # in-process model cache; spawned workers hit the disk cache.
        from ..stats.training import default_models
        await loop.run_in_executor(None, default_models)
        if self.config.workers >= 1:
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.workers,
                initializer=_warm_worker)
        self._wakeup = asyncio.Event()
        self._slots = asyncio.Semaphore(max(1, self.config.workers))
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def drain(self) -> None:
        """Stop accepting work, finish everything queued and in flight."""
        self._draining = True
        while self._queue or self._in_flight:
            await asyncio.sleep(0.01)
        await self._shutdown()

    async def stop(self) -> None:
        """Immediate shutdown: fail queued jobs, drop the pool."""
        self._draining = True
        while self._queue:
            pending = self._queue.popleft()
            if not pending.future.done():
                pending.future.set_exception(DrainingError("shutting down"))
                pending.future.add_done_callback(_swallow)
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def workers_alive(self) -> int:
        """Live worker processes (``/healthz`` liveness probe).

        Pool workers spawn lazily, so before the first job this equals
        zero even on a healthy server; inline mode (``workers=0``)
        reports whether the dispatcher task is running instead.
        """
        if self._pool is None:
            return int(self._dispatcher is not None
                       and not self._dispatcher.done())
        processes = getattr(self._pool, "_processes", None) or {}
        return sum(1 for process in processes.values()
                   if process.is_alive())

    def retry_after(self) -> float:
        """Seconds after which a rejected client should retry.

        Estimated as the time to drain the current queue at the
        observed mean per-job latency across all workers, floored at
        one second so clients never busy-loop.
        """
        mean = self._job_seconds.mean or 0.5
        workers = max(1, self.config.workers)
        return max(1.0, round(len(self._queue) * mean / workers, 1))

    async def submit(self, request: JobRequest) -> str:
        """Queue one job and await its payload.

        Raises :class:`QueueFullError`, :class:`DrainingError`,
        :class:`JobCancelledError` (deadline passed while queued),
        :class:`JobTimeoutError` (deadline passed while running), or
        :class:`JobFailedError`.
        """
        if self._draining:
            raise DrainingError("scheduler is draining")
        if len(self._queue) >= self.config.max_queue:
            self.metrics.rejected_queue_full += 1
            raise QueueFullError(self.retry_after())
        loop = asyncio.get_running_loop()
        pending = _Pending(request, loop.create_future())
        self._queue.append(pending)
        self.metrics.jobs_submitted += 1
        self.metrics.record_queue_depth(len(self._queue))
        assert self._wakeup is not None, "scheduler not started"
        self._wakeup.set()

        remaining = request.deadline - time.monotonic()
        if remaining == float("inf"):
            return await pending.future
        try:
            return await asyncio.wait_for(asyncio.shield(pending.future),
                                          timeout=max(0.0, remaining))
        except asyncio.TimeoutError:
            # Deadline passed while the caller waited.  If the job is
            # still queued the dispatcher will skip it (cancelled); if
            # it is running its eventual result is dropped (timed out).
            pending.abandoned = True
            pending.future.add_done_callback(_swallow)
            self.metrics.jobs_timed_out += 1
            raise JobTimeoutError(request.id) from None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wakeup is not None and self._slots is not None
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self._queue:
                if self.config.batch_window > 0 and \
                        len(self._queue) < self.config.batch_max:
                    # Linger briefly so a burst coalesces into fewer,
                    # fuller batches (one IPC round per batch).
                    await asyncio.sleep(self.config.batch_window)
                # Acquire the worker slot *before* taking jobs off the
                # queue: jobs waiting for a worker must stay visible to
                # the queue bound, or backpressure would never trigger.
                await self._slots.acquire()
                batch = self._take_batch()
                if not batch:
                    self._slots.release()
                    continue
                self._in_flight += len(batch)
                self.metrics.in_flight = self._in_flight
                self.metrics.record_batch(len(batch))
                tracer = current_tracer()
                if tracer is not None:
                    now = time.monotonic()
                    for pending in batch:
                        ctx = pending.request.trace_ctx
                        if ctx is not None:
                            tracer.emit("queue-wait",
                                        now - pending.enqueued,
                                        parent=ctx.get("span_id"),
                                        id=pending.request.id)
                items = [p.request.worker_item() for p in batch]
                loop = asyncio.get_running_loop()
                task = loop.run_in_executor(self._pool, run_batch, items)
                finisher = asyncio.ensure_future(
                    self._finish_batch(batch, task))
                self._batch_tasks.add(finisher)
                finisher.add_done_callback(self._batch_tasks.discard)

    def _take_batch(self) -> list[_Pending]:
        """Pop up to ``batch_max`` runnable jobs; cancel expired ones."""
        now = time.monotonic()
        batch: list[_Pending] = []
        while self._queue and len(batch) < self.config.batch_max:
            pending = self._queue.popleft()
            if pending.request.deadline <= now or pending.abandoned:
                # Never reached a worker: genuinely cancelled.
                self.metrics.jobs_cancelled += 1
                if not pending.future.done():
                    pending.future.set_exception(
                        JobCancelledError(pending.request.id))
                    pending.future.add_done_callback(_swallow)
                continue
            batch.append(pending)
        self.metrics.record_queue_depth(len(self._queue))
        return batch

    async def _finish_batch(self, batch: list[_Pending],
                            task: asyncio.Future) -> None:
        started = time.monotonic()
        try:
            # Tolerate both shapes: ``(results, phases)`` from untraced
            # workers and test stand-ins, ``(results, phases, spans)``
            # from tracing workers.
            results, phases, *extra = await task
        except Exception as error:   # noqa: BLE001 -- pool died
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(JobFailedError(
                        f"worker pool failure: {error}",
                        type(error).__name__))
                    pending.future.add_done_callback(_swallow)
                self.metrics.jobs_failed += 1
        else:
            elapsed = time.monotonic() - started
            for _ in batch:
                self._job_seconds.record(elapsed / max(1, len(batch)))
            self.metrics.merge_worker_phases(phases)
            tracer = current_tracer()
            if tracer is not None:
                if extra and extra[0]:
                    tracer.adopt(extra[0])
                tracer.emit("worker-batch", elapsed, jobs=len(batch))
            by_id = {pending.request.id: pending for pending in batch}
            for job_id, ok, payload, error_kind in results:
                pending = by_id.pop(job_id, None)
                if pending is None:
                    continue
                if ok:
                    self.metrics.jobs_completed += 1
                    if not pending.future.done():
                        pending.future.set_result(payload)
                else:
                    self.metrics.jobs_failed += 1
                    if not pending.future.done():
                        pending.future.set_exception(
                            JobFailedError(payload, error_kind))
                        pending.future.add_done_callback(_swallow)
        finally:
            self._in_flight -= len(batch)
            self.metrics.in_flight = self._in_flight
            assert self._slots is not None
            self._slots.release()
