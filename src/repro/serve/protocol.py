"""Wire shapes of the serving API: jobs, config handling, errors.

The service speaks plain JSON.  A disassembly request carries the
binary as a base64 ``.bin`` container plus optional
:class:`~repro.core.config.DisassemblerConfig` field overrides; the
response embeds the exact :meth:`DisassemblyResult.to_json
<repro.result.DisassemblyResult.to_json>` object, so serving output is
byte-identical to the offline CLI for the same container and config
(the acceptance bar of the serving layer).
"""

from __future__ import annotations

import base64
import binascii
import dataclasses
from dataclasses import dataclass, field
from typing import Any

from ..core.config import DEFAULT_CONFIG, DisassemblerConfig
from ..formats import FORMAT_NAMES
from ..stats.cache import stable_digest

#: Bump when request/response shapes or job semantics change.
#: v2: requests may carry a ``format`` field ("auto" / "rprb" /
#: "elf64" / "pe32+"); real ELF/PE payloads are accepted and
#: canonicalized to the native container at admission.
#: v3: disassemble requests may carry a ``base`` fingerprint (the
#: ``fingerprint`` of a previous response); workers holding that run's
#: fact base re-disassemble incrementally.  Responses carry
#: ``fingerprint``.  Purely a performance hint: payloads are
#: byte-identical with or without it.
PROTOCOL_VERSION = 3

#: Job kinds the scheduler understands.
KINDS = ("disassemble", "lint")


class ProtocolError(ValueError):
    """A malformed request; carries the HTTP status to answer with."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class JobRequest:
    """One unit of work as it travels to the scheduler and workers."""

    id: str
    kind: str                               # member of KINDS
    blob: bytes                             # serialized .bin container
    config_overrides: dict[str, Any] | None = None
    lint_disable: tuple[str, ...] = ()
    #: sha256 fingerprint of a previously disassembled container; a
    #: worker still holding that run's fact base re-disassembles
    #: incrementally (byte-identical output either way).
    base: str = ""
    #: Absolute monotonic deadline; the scheduler refuses to start the
    #: job after it (the job is *cancelled*, not merely late).
    deadline: float = float("inf")
    #: Serialized :class:`repro.obs.SpanContext` of the request span
    #: when tracing is active; worker spans re-parent under it.
    trace_ctx: dict | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ProtocolError(f"unknown job kind {self.kind!r}")

    def worker_item(self) -> tuple:
        """The picklable tuple shipped to a worker process.

        Stays a flat 5-tuple in the common case; a ``base`` fingerprint
        travels as an optional sixth element and the span context (when
        tracing) as a seventh (workers and test stand-ins unpack with
        ``job_id, *rest``).
        """
        item = (self.id, self.kind, self.blob, self.config_overrides,
                self.lint_disable)
        if self.base:
            item += (self.base,)
        if self.trace_ctx is not None:
            if not self.base:
                item += ("",)
            item += (self.trace_ctx,)
        return item


@dataclass
class JobResult:
    """What a worker returns for one job."""

    id: str
    ok: bool
    #: On success: the payload JSON string (``DisassemblyResult.to_json``
    #: or ``LintReport.to_json``).  On failure: an error message.
    payload: str
    error_kind: str = ""


# ----------------------------------------------------------------------
# Config handling
# ----------------------------------------------------------------------

_CONFIG_FIELDS = {f.name: f.type for f in
                  dataclasses.fields(DisassemblerConfig)}


def config_from_overrides(overrides: dict[str, Any] | None
                          ) -> DisassemblerConfig:
    """A :class:`DisassemblerConfig` from a request's override dict.

    Unknown field names are a client error (400), not silently
    ignored: a typo would otherwise serve results under the wrong
    cache key forever.
    """
    if not overrides:
        return DEFAULT_CONFIG
    unknown = sorted(set(overrides) - set(_CONFIG_FIELDS))
    if unknown:
        raise ProtocolError(f"unknown config field(s): {', '.join(unknown)}")
    try:
        return DisassemblerConfig(**overrides)
    except TypeError as error:
        raise ProtocolError(f"bad config: {error}") from error


def config_fingerprint(overrides: dict[str, Any] | None) -> str:
    """Stable digest of the *effective* config for cache keying.

    Computed over the full resolved config (defaults included), so two
    override dicts that resolve to the same effective config share one
    fingerprint, and a default-config request keys identically to an
    empty override dict.
    """
    config = config_from_overrides(overrides)
    return stable_digest({"protocol": PROTOCOL_VERSION,
                          **dataclasses.asdict(config)})


# ----------------------------------------------------------------------
# Body parsing
# ----------------------------------------------------------------------

def decode_binary_field(body: dict[str, Any]) -> bytes:
    """Extract and base64-decode the ``binary_b64`` request field."""
    encoded = body.get("binary_b64")
    if not isinstance(encoded, str) or not encoded:
        raise ProtocolError("missing or non-string 'binary_b64' field")
    try:
        return base64.b64decode(encoded, validate=True)
    except (binascii.Error, ValueError) as error:
        raise ProtocolError(f"bad base64 in 'binary_b64': {error}") \
            from error


def encode_binary(blob: bytes) -> str:
    """The client-side counterpart of :func:`decode_binary_field`."""
    return base64.b64encode(blob).decode("ascii")


@dataclass
class ParsedRequest:
    """A validated ``/v1/*`` request body."""

    blob: bytes
    config_overrides: dict[str, Any] | None
    lint_disable: tuple[str, ...] = ()
    timeout_ms: int | None = None
    #: Declared container format ("auto" = detect by magic bytes).
    format: str = "auto"
    #: Fingerprint of a previous response for incremental reuse (v3).
    base: str = ""
    extras: dict[str, Any] = field(default_factory=dict)


def parse_job_body(body: Any, kind: str) -> ParsedRequest:
    """Validate a request body for ``POST /v1/disassemble`` or ``/v1/lint``."""
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    blob = decode_binary_field(body)
    fmt = body.get("format", "auto")
    if fmt not in FORMAT_NAMES:
        raise ProtocolError(
            f"unknown format {fmt!r} (expected one of "
            f"{', '.join(FORMAT_NAMES)})")
    overrides = body.get("config")
    if overrides is not None and not isinstance(overrides, dict):
        raise ProtocolError("'config' must be a JSON object")
    config_from_overrides(overrides)        # validate field names early
    timeout_ms = body.get("timeout_ms")
    if timeout_ms is not None:
        if not isinstance(timeout_ms, int) or timeout_ms <= 0:
            raise ProtocolError("'timeout_ms' must be a positive integer")
    disable: tuple[str, ...] = ()
    if kind == "lint":
        raw = body.get("disable", [])
        if not isinstance(raw, list) or \
                not all(isinstance(r, str) for r in raw):
            raise ProtocolError("'disable' must be a list of rule ids")
        disable = tuple(raw)
    base = ""
    if kind == "disassemble":
        raw_base = body.get("base", "")
        if not isinstance(raw_base, str):
            raise ProtocolError("'base' must be a string fingerprint")
        if raw_base:
            if len(raw_base) != 64 or \
                    any(c not in "0123456789abcdef" for c in raw_base):
                raise ProtocolError(
                    "'base' must be a 64-character lowercase hex "
                    "fingerprint from a previous response")
            base = raw_base
    return ParsedRequest(blob=blob, config_overrides=overrides,
                         lint_disable=disable, timeout_ms=timeout_ms,
                         format=fmt, base=base)
