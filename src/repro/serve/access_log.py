"""Structured JSONL access logging for the serving layer.

One JSON object per line, one line per HTTP request, flushed eagerly
so a crash or SIGKILL loses at most the in-flight request.  Fields are
stable and sorted, so downstream tooling (grep, jq, log shippers) can
rely on the shape::

    {"cached": false, "endpoint": "/v1/disassemble", "id": "r00000003",
     "latency_ms": 412.7, "method": "POST", "status": 200, "ts": ...}
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import IO


class AccessLog:
    """Append-only JSONL writer; ``path=None`` writes to stderr."""

    def __init__(self, path: str | Path | None = None,
                 stream: IO[str] | None = None,
                 enabled: bool = True) -> None:
        self.enabled = enabled
        self.path = Path(path) if path is not None else None
        self._owns_stream = False
        if not enabled:
            self._stream: IO[str] | None = None
        elif stream is not None:
            self._stream = stream
        elif self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sys.stderr
        self.lines_written = 0

    def record(self, **fields) -> None:
        """Write one access-log line (timestamped unless given)."""
        if not self.enabled or self._stream is None:
            return
        fields.setdefault("ts", round(time.time(), 6))
        line = json.dumps(fields, sort_keys=True, default=str)
        try:
            self._stream.write(line + "\n")
            self._stream.flush()
            self.lines_written += 1
        except (OSError, ValueError):
            # A full disk or closed stream must never take down serving.
            self.enabled = False

    def close(self) -> None:
        """Flush and release the file handle (part of graceful drain)."""
        if self._stream is not None and self._owns_stream:
            try:
                self._stream.flush()
                self._stream.close()
            except (OSError, ValueError):
                pass
        self._stream = None
        self.enabled = False
