"""Content-addressed result cache for the serving layer.

Keys are ``sha256(container bytes)`` + the effective config
fingerprint + the job kind, so a repeated binary under the same config
skips disassembly entirely while any config change (or asking for lint
instead of disassembly) is a guaranteed miss.  Values are the exact
response payload strings a worker produced, so a cache hit serves
byte-identical output to the original computation.

The cache lives in the server process and is only touched from the
event-loop thread, so it needs no locking; it is bounded LRU with
hit/miss/eviction counters surfaced on ``/metrics``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from .protocol import config_fingerprint


def result_key(blob: bytes, kind: str,
               config_overrides: dict | None,
               extra: str = "") -> str:
    """The full cache key of one (container, kind, config) request."""
    digest = hashlib.sha256(blob).hexdigest()
    key = f"{kind}:{digest}:{config_fingerprint(config_overrides)}"
    return f"{key}:{extra}" if extra else key


class ResultCache:
    """Bounded LRU mapping result keys to response payload strings."""

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max(0, int(max_entries))
        self._entries: OrderedDict[str, str] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> str | None:
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key: str, payload: str) -> None:
        if self.max_entries == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = payload
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
