"""Operational counters for the serving layer, exposed on ``/metrics``.

Everything here is plain in-process counting -- no background threads,
no sampling.  Worker-side phase durations arrive as
:meth:`~repro.perf.PhaseTimings.as_dict` dumps attached to batch
results and are merged into one process-wide
:class:`~repro.perf.PhaseTimings`, so ``/metrics`` shows where worker
time actually goes (superset, scoring, correction, ...) using the same
instrumentation the offline CLI prints under ``--profile``.
"""

from __future__ import annotations

import time

from ..obs.metrics import MetricsRegistry
from ..perf import PhaseTimings


class LatencySummary:
    """Streaming min/max/mean summary of a duration series (seconds)."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": round(self.total, 6),
            "mean_s": round(self.mean, 6),
            "min_s": round(self.min, 6) if self.count else 0.0,
            "max_s": round(self.max, 6),
        }


class ServeMetrics:
    """All counters one serving process exports."""

    def __init__(self) -> None:
        self.started = time.time()
        #: (endpoint, status) -> count, e.g. ("/v1/disassemble", 200).
        self.requests: dict[tuple[str, int], int] = {}
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0      # expired before a worker ran them
        self.jobs_timed_out = 0      # deadline passed while running
        self.rejected_queue_full = 0
        self.batches = 0
        self.batched_jobs = 0
        self.queue_depth = 0
        self.queue_peak = 0
        self.in_flight = 0
        self.latency: dict[str, LatencySummary] = {}
        self.worker_phases = PhaseTimings()

    # ------------------------------------------------------------------

    def record_request(self, endpoint: str, status: int,
                       seconds: float) -> None:
        key = (endpoint, status)
        self.requests[key] = self.requests.get(key, 0) + 1
        self.latency.setdefault(endpoint, LatencySummary()).record(seconds)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_jobs += size

    def record_queue_depth(self, depth: int) -> None:
        self.queue_depth = depth
        self.queue_peak = max(self.queue_peak, depth)

    def merge_worker_phases(self, phases: dict[str, float]) -> None:
        self.worker_phases.merge(phases)

    # ------------------------------------------------------------------

    def snapshot(self, *, cache_stats: dict | None = None,
                 extra: dict | None = None) -> dict:
        """The ``/metrics`` response body."""
        out = {
            "uptime_s": round(time.time() - self.started, 3),
            "requests": {
                f"{endpoint}:{status}": count
                for (endpoint, status), count in sorted(self.requests.items())
            },
            "jobs": {
                "submitted": self.jobs_submitted,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "cancelled": self.jobs_cancelled,
                "timed_out": self.jobs_timed_out,
                "rejected_queue_full": self.rejected_queue_full,
            },
            "batching": {
                "batches": self.batches,
                "batched_jobs": self.batched_jobs,
                "mean_batch_size": (round(self.batched_jobs / self.batches, 3)
                                    if self.batches else 0.0),
            },
            "queue": {
                "depth": self.queue_depth,
                "peak": self.queue_peak,
                "in_flight": self.in_flight,
            },
            "latency": {endpoint: summary.as_dict()
                        for endpoint, summary in sorted(self.latency.items())},
            "worker_phases_s": {
                name: round(seconds, 6)
                for name, seconds in self.worker_phases.as_dict().items()
            },
        }
        if cache_stats is not None:
            out["cache"] = cache_stats
        if extra:
            out.update(extra)
        return out

    def registry(self, *, queue_depth: int | None = None,
                 in_flight: int | None = None,
                 workers_alive: int | None = None,
                 cache_stats: dict | None = None) -> MetricsRegistry:
        """This process's counters as a :class:`MetricsRegistry`.

        Built on demand from the plain counters above (the hot path
        stays integer increments), plus live gauge values supplied by
        the caller.  The result renders the Prometheus text format via
        :meth:`MetricsRegistry.render_prometheus` for
        ``GET /metrics?format=prometheus`` and ``repro metrics``.
        """
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_serve_requests_total",
            "HTTP requests served, by endpoint and status")
        for (endpoint, status), count in self.requests.items():
            requests.inc(count, endpoint=endpoint, status=str(status))
        jobs = registry.counter("repro_serve_jobs_total",
                                "Jobs by terminal outcome")
        for outcome, count in (("submitted", self.jobs_submitted),
                               ("completed", self.jobs_completed),
                               ("failed", self.jobs_failed),
                               ("cancelled", self.jobs_cancelled),
                               ("timed_out", self.jobs_timed_out),
                               ("rejected_queue_full",
                                self.rejected_queue_full)):
            if count:
                jobs.inc(count, outcome=outcome)
        batches = registry.counter("repro_serve_batches_total",
                                   "Micro-batches dispatched to workers")
        if self.batches:
            batches.inc(self.batches)
        batched = registry.counter("repro_serve_batched_jobs_total",
                                   "Jobs dispatched inside micro-batches")
        if self.batched_jobs:
            batched.inc(self.batched_jobs)
        seconds = registry.counter(
            "repro_serve_request_seconds_total",
            "Cumulative request wall time, by endpoint")
        counts = registry.counter(
            "repro_serve_request_seconds_count",
            "Requests contributing to repro_serve_request_seconds_total")
        for endpoint, summary in self.latency.items():
            seconds.inc(summary.total, endpoint=endpoint)
            counts.inc(summary.count, endpoint=endpoint)
        phases = registry.counter(
            "repro_serve_worker_phase_seconds_total",
            "Worker pipeline time, by phase")
        for name, spent in self.worker_phases.as_dict().items():
            phases.inc(spent, phase=name)
        registry.gauge("repro_serve_uptime_seconds",
                       "Seconds since the server started").set(
            time.time() - self.started)
        registry.gauge("repro_serve_queue_peak",
                       "Highest observed queue depth").set(self.queue_peak)
        if queue_depth is not None:
            registry.gauge("repro_serve_queue_depth",
                           "Jobs queued, not yet dispatched").set(
                queue_depth)
        if in_flight is not None:
            registry.gauge("repro_serve_in_flight",
                           "Jobs currently running on workers").set(
                in_flight)
        if workers_alive is not None:
            registry.gauge("repro_serve_workers_alive",
                           "Live worker processes (dispatcher liveness "
                           "in inline mode)").set(workers_alive)
        if cache_stats is not None:
            cache = registry.counter("repro_serve_cache_total",
                                     "Result-cache lookups, by outcome")
            for outcome in ("hits", "misses", "evictions"):
                if cache_stats.get(outcome):
                    cache.inc(cache_stats[outcome], outcome=outcome)
            registry.gauge("repro_serve_cache_entries",
                           "Result-cache entries resident").set(
                cache_stats.get("entries", 0))
        return registry

    def render_prometheus(self, **live) -> str:
        """Prometheus text exposition (see :meth:`registry`)."""
        return self.registry(**live).render_prometheus()
