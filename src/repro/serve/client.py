"""A small blocking client for the serving API.

Used by the test suite, the CI smoke job, the fleet driver
(``repro evalfleet run --via serve``), and the closed-loop load
generator (``benchmarks/bench_serve.py``).  One HTTP connection per
request keeps it trivially thread-safe: a load generator can share one
:class:`ServeClient` across worker threads.

The client is hardened for unattended fleet use:

* **Bounded retry** -- connection-level failures (refused, reset,
  timed out) and HTTP 429 backpressure are retried up to ``retries``
  times with exponential backoff plus jitter; a 429's ``Retry-After``
  header is honored as the floor of the pause.
* **Per-request deadline** -- ``deadline`` caps the wall-clock of one
  logical request *including* all retries and pauses, distinct from
  ``connect_timeout`` (TCP connect) and ``timeout`` (socket reads).
* **Typed errors** -- callers never see raw socket exceptions:
  transport failures surface as :class:`TransportError` (a
  :class:`ServeError` with ``status == 0``).

>>> client = ServeClient(port=8080, retries=4)         # doctest: +SKIP
>>> body = client.disassemble(binary.to_bytes())       # doctest: +SKIP
>>> body["result"]["function_entries"]                 # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any

from ..result import DisassemblyResult
from .protocol import encode_binary


class ServeError(Exception):
    """A non-2xx response; carries status and the decoded body."""

    def __init__(self, status: int, body: Any) -> None:
        message = body.get("error") if isinstance(body, dict) else str(body)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body


class BackpressureError(ServeError):
    """HTTP 429: the queue is full.  ``retry_after`` is in seconds."""

    def __init__(self, status: int, body: Any,
                 retry_after: float) -> None:
        super().__init__(status, body)
        self.retry_after = retry_after


class DeadlineError(ServeError):
    """HTTP 504: the job's deadline expired."""


class TransportError(ServeError):
    """The server could not be reached (or answered garbage).

    Raised in place of raw ``socket`` / ``http.client`` exceptions once
    the retry budget or the per-request deadline is exhausted.  Carries
    ``status == 0`` and the last underlying exception as ``cause``.
    """

    def __init__(self, message: str,
                 cause: Exception | None = None) -> None:
        Exception.__init__(self, message)
        self.status = 0
        self.body = None
        self.cause = cause


#: Exceptions the transport layer may raise for one round trip.
_TRANSPORT_FAILURES = (ConnectionError, socket.timeout, socket.gaierror,
                      http.client.HTTPException, OSError)


class ServeClient:
    """Blocking JSON client for one ``repro serve`` instance.

    ``timeout`` bounds socket reads; ``connect_timeout`` (default: the
    read timeout) bounds only the TCP connect; ``deadline`` (default:
    unbounded) caps one logical request end to end, retries included.
    ``retries`` is the number of *additional* attempts after the first
    (0 keeps the historical single-shot behavior); pauses grow as
    ``backoff * 2**attempt`` capped at ``max_backoff``, jittered to
    avoid thundering herds.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 120.0, *,
                 connect_timeout: float | None = None,
                 deadline: float | None = None,
                 retries: int = 0, backoff: float = 0.5,
                 max_backoff: float = 10.0) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout \
            if connect_timeout is not None else timeout
        self.deadline = deadline
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def request(self, method: str, path: str,
                body: dict | None = None, *,
                read_timeout: float | None = None
                ) -> tuple[int, dict[str, str], Any]:
        """One raw round trip: (status, headers, decoded body).

        This is the single-shot layer: it raises raw socket /
        ``http.client`` exceptions and never retries.  Use the API
        methods (or :meth:`_checked`) for the hardened path.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout)
        try:
            connection.connect()
            if connection.sock is not None:
                connection.sock.settimeout(
                    read_timeout if read_timeout is not None
                    else self.timeout)
            payload = json.dumps(body).encode("utf-8") \
                if body is not None else None
            connection.request(method, path, body=payload,
                               headers={"Content-Type": "application/json"}
                               if payload else {})
            response = connection.getresponse()
            raw = response.read()
            headers = {name.lower(): value
                       for name, value in response.getheaders()}
            try:
                decoded = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                decoded = raw.decode("utf-8", "replace")
            return response.status, headers, decoded
        finally:
            connection.close()

    def _remaining(self, deadline_at: float | None) -> float | None:
        if deadline_at is None:
            return None
        return deadline_at - time.monotonic()

    def _pause(self, attempt: int, deadline_at: float | None,
               failure: ServeError, floor: float = 0.0) -> None:
        """Sleep before attempt ``attempt + 1``, or raise ``failure``.

        Raises when the retry budget is spent or when the pause would
        cross the per-request deadline -- exhausting quietly would turn
        a hard deadline into a soft one.
        """
        if attempt >= self.retries:
            raise failure
        delay = min(self.backoff * (2 ** attempt), self.max_backoff)
        delay *= 0.5 + random.random() * 0.5   # full jitter, halved floor
        delay = max(delay, floor)
        remaining = self._remaining(deadline_at)
        if remaining is not None and delay >= remaining:
            raise failure
        time.sleep(delay)

    def _checked(self, method: str, path: str,
                 body: dict | None = None) -> Any:
        deadline_at = time.monotonic() + self.deadline \
            if self.deadline is not None else None
        attempt = 0
        while True:
            read_timeout = self.timeout
            remaining = self._remaining(deadline_at)
            if remaining is not None:
                if remaining <= 0:
                    raise TransportError(
                        f"{method} {path}: deadline of "
                        f"{self.deadline:.1f}s exhausted after "
                        f"{attempt} attempt(s)")
                read_timeout = min(read_timeout, remaining)
            try:
                status, headers, decoded = self.request(
                    method, path, body, read_timeout=read_timeout)
            except _TRANSPORT_FAILURES as error:
                self._pause(attempt, deadline_at, TransportError(
                    f"{method} {path}: {self.host}:{self.port} "
                    f"unreachable after {attempt + 1} attempt(s): "
                    f"{type(error).__name__}: {error}", cause=error))
                attempt += 1
                continue
            if 200 <= status < 300:
                return decoded
            if status == 429:
                retry_after = float(headers.get("retry-after", "1"))
                self._pause(attempt, deadline_at,
                            BackpressureError(status, decoded, retry_after),
                            floor=retry_after)
                attempt += 1
                continue
            if status == 504:
                raise DeadlineError(status, decoded)
            raise ServeError(status, decoded)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def disassemble(self, blob: bytes, *, config: dict | None = None,
                    timeout_ms: int | None = None,
                    format: str = "auto",
                    base: str | None = None) -> dict:
        """POST /v1/disassemble; returns the full response body.

        ``blob`` may be a native container, an ELF64 file, or a PE32+
        file; ``format`` defaults to magic-byte auto-detection.
        ``base`` is the ``fingerprint`` of a previous response: a
        worker still holding that run's fact base re-disassembles
        incrementally (byte-identical output, a pure latency hint).
        """
        body: dict = {"binary_b64": encode_binary(blob)}
        if config is not None:
            body["config"] = config
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        if format != "auto":
            body["format"] = format
        if base:
            body["base"] = base
        return self._checked("POST", "/v1/disassemble", body)

    def disassemble_result(self, blob: bytes, *,
                           config: dict | None = None,
                           timeout_ms: int | None = None,
                           format: str = "auto"
                           ) -> DisassemblyResult:
        """Like :meth:`disassemble`, decoded to a DisassemblyResult."""
        body = self.disassemble(blob, config=config, timeout_ms=timeout_ms,
                                format=format)
        return DisassemblyResult.from_json(json.dumps(body["result"]))

    def lint(self, blob: bytes, *, config: dict | None = None,
             disable: tuple[str, ...] = (),
             timeout_ms: int | None = None,
             format: str = "auto") -> dict:
        """POST /v1/lint; returns the full response body."""
        body: dict = {"binary_b64": encode_binary(blob)}
        if config is not None:
            body["config"] = config
        if disable:
            body["disable"] = list(disable)
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        if format != "auto":
            body["format"] = format
        return self._checked("POST", "/v1/lint", body)

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics(self) -> dict:
        return self._checked("GET", "/metrics")

    # ------------------------------------------------------------------

    def wait_ready(self, timeout: float = 30.0,
                   interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the server answers (or time out)."""
        deadline = time.monotonic() + timeout
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (ConnectionError, socket.error, ServeError) as error:
                last_error = error
                time.sleep(interval)
        raise TimeoutError(
            f"server at {self.host}:{self.port} not ready after "
            f"{timeout:.0f}s: {last_error}")
