"""A small blocking client for the serving API.

Used by the test suite, the CI smoke job, and the closed-loop load
generator (``benchmarks/bench_serve.py``).  One HTTP connection per
request keeps it trivially thread-safe: a load generator can share one
:class:`ServeClient` across worker threads.

>>> client = ServeClient(port=8080)                    # doctest: +SKIP
>>> body = client.disassemble(binary.to_bytes())       # doctest: +SKIP
>>> body["result"]["function_entries"]                 # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any

from ..result import DisassemblyResult
from .protocol import encode_binary


class ServeError(Exception):
    """A non-2xx response; carries status and the decoded body."""

    def __init__(self, status: int, body: Any) -> None:
        message = body.get("error") if isinstance(body, dict) else str(body)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body


class BackpressureError(ServeError):
    """HTTP 429: the queue is full.  ``retry_after`` is in seconds."""

    def __init__(self, status: int, body: Any,
                 retry_after: float) -> None:
        super().__init__(status, body)
        self.retry_after = retry_after


class DeadlineError(ServeError):
    """HTTP 504: the job's deadline expired."""


class ServeClient:
    """Blocking JSON client for one ``repro serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def request(self, method: str, path: str,
                body: dict | None = None
                ) -> tuple[int, dict[str, str], Any]:
        """One raw round trip: (status, headers, decoded body)."""
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") \
                if body is not None else None
            connection.request(method, path, body=payload,
                               headers={"Content-Type": "application/json"}
                               if payload else {})
            response = connection.getresponse()
            raw = response.read()
            headers = {name.lower(): value
                       for name, value in response.getheaders()}
            try:
                decoded = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                decoded = raw.decode("utf-8", "replace")
            return response.status, headers, decoded
        finally:
            connection.close()

    def _checked(self, method: str, path: str,
                 body: dict | None = None) -> Any:
        status, headers, decoded = self.request(method, path, body)
        if 200 <= status < 300:
            return decoded
        if status == 429:
            retry_after = float(headers.get("retry-after", "1"))
            raise BackpressureError(status, decoded, retry_after)
        if status == 504:
            raise DeadlineError(status, decoded)
        raise ServeError(status, decoded)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def disassemble(self, blob: bytes, *, config: dict | None = None,
                    timeout_ms: int | None = None,
                    format: str = "auto",
                    base: str | None = None) -> dict:
        """POST /v1/disassemble; returns the full response body.

        ``blob`` may be a native container, an ELF64 file, or a PE32+
        file; ``format`` defaults to magic-byte auto-detection.
        ``base`` is the ``fingerprint`` of a previous response: a
        worker still holding that run's fact base re-disassembles
        incrementally (byte-identical output, a pure latency hint).
        """
        body: dict = {"binary_b64": encode_binary(blob)}
        if config is not None:
            body["config"] = config
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        if format != "auto":
            body["format"] = format
        if base:
            body["base"] = base
        return self._checked("POST", "/v1/disassemble", body)

    def disassemble_result(self, blob: bytes, *,
                           config: dict | None = None,
                           timeout_ms: int | None = None,
                           format: str = "auto"
                           ) -> DisassemblyResult:
        """Like :meth:`disassemble`, decoded to a DisassemblyResult."""
        body = self.disassemble(blob, config=config, timeout_ms=timeout_ms,
                                format=format)
        return DisassemblyResult.from_json(json.dumps(body["result"]))

    def lint(self, blob: bytes, *, config: dict | None = None,
             disable: tuple[str, ...] = (),
             timeout_ms: int | None = None,
             format: str = "auto") -> dict:
        """POST /v1/lint; returns the full response body."""
        body: dict = {"binary_b64": encode_binary(blob)}
        if config is not None:
            body["config"] = config
        if disable:
            body["disable"] = list(disable)
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        if format != "auto":
            body["format"] = format
        return self._checked("POST", "/v1/lint", body)

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics(self) -> dict:
        return self._checked("GET", "/metrics")

    # ------------------------------------------------------------------

    def wait_ready(self, timeout: float = 30.0,
                   interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the server answers (or time out)."""
        deadline = time.monotonic() + timeout
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (ConnectionError, socket.error, ServeError) as error:
                last_error = error
                time.sleep(interval)
        raise TimeoutError(
            f"server at {self.host}:{self.port} not ready after "
            f"{timeout:.0f}s: {last_error}")
