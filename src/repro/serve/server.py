"""The asyncio HTTP/1.1 JSON API of the serving layer.

Stdlib-only (``asyncio`` + ``json``): a hand-rolled HTTP/1.1 request
parser over :func:`asyncio.start_server`, which is all four endpoints
need::

    POST /v1/disassemble   {"binary_b64": ..., "config"?, "timeout_ms"?}
    POST /v1/lint          {... same ..., "disable"?: [rule ids]}
    GET  /healthz
    GET  /metrics

Every request gets a server-assigned id (echoed as ``X-Request-Id``
and in the body), a deadline, and a structured access-log line.
Overload answers are explicit: 413 over ``max_body``, 429 with
``Retry-After`` when the job queue is full, 503 while draining, 504
when a deadline expires.  SIGTERM/SIGINT triggers a graceful drain:
stop accepting, finish in-flight jobs, flush logs, exit.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import signal
import time
from dataclasses import dataclass

from ..formats import FormatError, load_any
from ..obs.metrics import REGISTRY
from ..obs.trace import Tracer, set_tracer, trace_path_from_env
from .access_log import AccessLog
from .cache import ResultCache, result_key
from .metrics import ServeMetrics
from .protocol import (PROTOCOL_VERSION, JobRequest, ProtocolError,
                       parse_job_body)
from .scheduler import (DrainingError, JobCancelledError, JobFailedError,
                        JobScheduler, JobTimeoutError, QueueFullError,
                        SchedulerConfig)

_MAX_REQUEST_LINE = 8 * 1024
_MAX_HEADER_COUNT = 64


@dataclass(frozen=True)
class _PlainText:
    """A non-JSON response body (Prometheus text exposition)."""

    text: str


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8080                     # 0 = ephemeral (tests)
    workers: int = 1                     # 0 = inline execution
    max_queue: int = 64
    batch_max: int = 8
    batch_window: float = 0.0            # seconds
    cache_size: int = 256                # result-cache entries
    max_body: int = 64 * 1024 * 1024     # bytes
    default_timeout: float = 120.0       # per-job deadline, seconds
    access_log_path: str | None = None   # None = stderr
    access_log_enabled: bool = True
    #: Span JSONL sink; None falls back to the ``REPRO_TRACE`` env var,
    #: and tracing stays off when neither is set.
    trace_path: str | None = None
    #: Sampling-profile JSON sink; None falls back to ``REPRO_PROFILE``,
    #: and sampling stays off when neither is set.  The document is
    #: written when the server drains or closes.
    profile_path: str | None = None

    def scheduler_config(self) -> SchedulerConfig:
        return SchedulerConfig(workers=self.workers,
                               max_queue=self.max_queue,
                               batch_max=self.batch_max,
                               batch_window=self.batch_window)


class ServeApp:
    """One serving process: HTTP front end + scheduler + cache."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.metrics = ServeMetrics()
        self.cache = ResultCache(max_entries=self.config.cache_size)
        self.scheduler = JobScheduler(self.config.scheduler_config(),
                                      metrics=self.metrics)
        self.access_log = AccessLog(path=self.config.access_log_path,
                                    enabled=self.config.access_log_enabled)
        self._ids = itertools.count(1)
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self._active_requests = 0
        self._stopped: asyncio.Event | None = None
        self._drain_task: asyncio.Task | None = None
        #: Request-lifecycle tracer (queue -> batch -> worker spans).
        #: Interleaved requests share one asyncio thread, so spans use
        #: the explicit start/finish API, never the thread-local stack.
        self._trace_path = (self.config.trace_path
                            or trace_path_from_env())
        self.tracer = Tracer() if self._trace_path else None
        self._previous_tracer: Tracer | None = None
        from ..obs.profile import profile_path_from_env
        self._profile_path = (self.config.profile_path
                              or profile_path_from_env())
        self._profiler = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        if self.tracer is not None:
            # Install process-wide so the scheduler's dispatch loop and
            # inline workers see it via current_tracer().
            self._previous_tracer = set_tracer(self.tracer)
        if self._profile_path and self._profiler is None:
            from ..obs.profile import start_profiler
            self._profiler = start_profiler()
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)

    async def serve_forever(self, *, install_signals: bool = False,
                            ready: asyncio.Event | None = None,
                            announce=None) -> None:
        """Start and run until :meth:`initiate_drain` completes."""
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.initiate_drain, signum)
        if announce is not None:
            announce(f"serving on {self.config.host}:{self.port} "
                     f"({self.config.workers} workers, "
                     f"queue {self.config.max_queue}, "
                     f"cache {self.config.cache_size})")
        if ready is not None:
            ready.set()
        assert self._stopped is not None
        await self._stopped.wait()

    def initiate_drain(self, signum: int | None = None) -> None:
        """Begin graceful shutdown (idempotent, signal-safe)."""
        if self._draining:
            return
        self._draining = True
        self._drain_task = asyncio.ensure_future(self._drain(signum))

    async def _drain(self, signum: int | None) -> None:
        self.access_log.record(event="drain-start",
                               signal=signum if signum is not None else "api",
                               queue_depth=self.scheduler.queue_depth(),
                               in_flight=self.scheduler.in_flight)
        if self._server is not None:
            self._server.close()           # stop accepting connections
            await self._server.wait_closed()
        while self._active_requests > 0:   # finish requests being served
            await asyncio.sleep(0.01)
        await self.scheduler.drain()       # finish queued + in-flight jobs
        self.access_log.record(event="drain-complete")
        self._close_tracer()
        self.access_log.close()            # flush logs last
        assert self._stopped is not None
        self._stopped.set()

    def _close_tracer(self) -> None:
        self._close_profiler()
        if self.tracer is None:
            return
        set_tracer(self._previous_tracer)
        if self._trace_path:
            self.tracer.flush_jsonl(self._trace_path)

    def _close_profiler(self) -> None:
        if self._profiler is None:
            return
        from ..obs.profile import stop_profiler
        stop_profiler()
        self._profiler.write(self._profile_path, command="serve")
        self._profiler = None

    async def aclose(self) -> None:
        """Non-graceful teardown for tests."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.scheduler.stop()
        self._close_tracer()
        self.access_log.close()
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body, parse_error = parsed
                keep_alive = (not self._draining and parse_error is None
                              and headers.get("connection", "").lower()
                              != "close")
                await self._serve_one(writer, method, path, headers,
                                      body, parse_error, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; returns None on clean EOF.

        Returns ``(method, path, headers, body, error)`` where
        ``error`` is a ready-made (status, message) for malformed input
        whose connection is still in a recoverable state.
        """
        try:
            line = await reader.readline()
        except ValueError:
            return ("GET", "/", {}, b"", (400, "request line too long"))
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return ("GET", "/", {}, b"", (400, "malformed request line"))
        method, target, _version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_COUNT + 1):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        else:
            return (method, target, headers, b"", (400, "too many headers"))
        if "chunked" in headers.get("transfer-encoding", "").lower():
            return (method, target, headers, b"",
                    (501, "chunked bodies not supported"))
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return (method, target, headers, b"",
                    (400, "bad Content-Length"))
        if length > self.config.max_body:
            # The body is not drained: answer and close the connection.
            return (method, target, headers, b"",
                    (413, f"body exceeds max_body={self.config.max_body}"))
        body = await reader.readexactly(length) if length else b""
        return (method, target, headers, body, None)

    async def _serve_one(self, writer: asyncio.StreamWriter, method: str,
                         path: str, headers: dict[str, str], body: bytes,
                         parse_error, keep_alive: bool) -> None:
        request_id = f"r{next(self._ids):08d}"
        started = time.monotonic()
        self._active_requests += 1
        extra_headers: dict[str, str] = {}
        cached = False
        endpoint = path.split("?")[0]
        span = (self.tracer.start("request", parent="", id=request_id,
                                  method=method, endpoint=endpoint)
                if self.tracer is not None else None)
        try:
            if parse_error is not None:
                status, message = parse_error
                payload: dict | _PlainText = {"error": message,
                                              "id": request_id}
            else:
                status, payload, extra_headers, cached = \
                    await self._dispatch(method, path, body, request_id,
                                         span=span)
        except Exception as error:   # noqa: BLE001 -- last-resort 500
            status = 500
            payload = {"error": f"internal error: {error}",
                       "id": request_id}
        finally:
            self._active_requests -= 1
        elapsed = time.monotonic() - started
        self.metrics.record_request(endpoint, status, elapsed)
        if span is not None and self.tracer is not None:
            self.tracer.finish(span, status=status, cached=cached)
            if self._trace_path:
                self.tracer.flush_jsonl(self._trace_path)
        self.access_log.record(id=request_id, method=method,
                               endpoint=endpoint, status=status,
                               latency_ms=round(elapsed * 1000, 3),
                               cached=cached,
                               bytes_in=len(body))
        if isinstance(payload, _PlainText):
            blob = payload.text.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            blob = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(blob)}",
                f"X-Request-Id: {request_id}"]
        for name, value in extra_headers.items():
            head.append(f"{name}: {value}")
        head.append("Connection: keep-alive" if keep_alive
                    else "Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + blob)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes,
                        request_id: str, span=None):
        """Returns (status, payload, extra_headers, cached)."""
        path, _, query = path.partition("?")
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}, False
            return 200, self._healthz_body(), {}, False
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}, False
            if "format=prometheus" in query.split("&"):
                return 200, _PlainText(self._prometheus_body()), {}, False
            snapshot = self.metrics.snapshot(
                cache_stats=self.cache.stats(),
                extra={"queue": {
                    "depth": self.scheduler.queue_depth(),
                    "peak": self.metrics.queue_peak,
                    "in_flight": self.scheduler.in_flight,
                }})
            return 200, snapshot, {}, False
        if path in ("/v1/disassemble", "/v1/lint"):
            if method != "POST":
                return 405, {"error": "method not allowed"}, {}, False
            kind = "disassemble" if path == "/v1/disassemble" else "lint"
            return await self._handle_job(kind, body, request_id,
                                          span=span)
        return 404, {"error": f"no such endpoint: {path}"}, {}, False

    def _serve_registry(self):
        """The live serve-layer registry (health + metrics source)."""
        return self.metrics.registry(
            queue_depth=self.scheduler.queue_depth(),
            in_flight=self.scheduler.in_flight,
            workers_alive=self.scheduler.workers_alive(),
            cache_stats=self.cache.stats())

    def _prometheus_body(self) -> str:
        # Serve-layer registry plus the process-global pipeline registry
        # (non-empty in inline mode, where jobs run in this process).
        return (self._serve_registry().render_prometheus()
                + REGISTRY.render_prometheus())

    def _healthz_body(self) -> dict:
        registry = self._serve_registry()
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self.metrics.started, 3),
            "workers": self.config.workers,
            "queue_depth": int(
                registry.get("repro_serve_queue_depth").value()),
            "in_flight": int(
                registry.get("repro_serve_in_flight").value()),
            "workers_alive": int(
                registry.get("repro_serve_workers_alive").value()),
        }

    async def _handle_job(self, kind: str, body: bytes, request_id: str,
                          span=None):
        if self._draining:
            return 503, {"error": "draining", "id": request_id}, {}, False
        try:
            parsed = parse_job_body(json.loads(body.decode("utf-8")), kind)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            return 400, {"error": f"bad JSON body: {error}",
                         "id": request_id}, {}, False
        except ProtocolError as error:
            return error.status, {"error": str(error),
                                  "id": request_id}, {}, False
        # Reject garbage pre-queue, and canonicalize real containers
        # (ELF64/PE32+) to native container bytes: workers only ever
        # see the canonical form, and an ELF payload shares its cache
        # entry with the equivalent .bin payload.
        try:
            image = load_any(parsed.blob, fmt=parsed.format)
        except FormatError as error:
            return 400, {"error": f"bad container: {error}",
                         "id": request_id}, {}, False
        blob = (parsed.blob if image.format == "rprb"
                else image.binary.to_bytes())
        if kind == "lint" and parsed.lint_disable:
            from ..lint import DEFAULT_REGISTRY
            known = {rule.id for rule in DEFAULT_REGISTRY}
            unknown = sorted(set(parsed.lint_disable) - known)
            if unknown:
                return 400, {"error": f"unknown rule(s): "
                                      f"{', '.join(unknown)}",
                             "id": request_id}, {}, False

        # sha256 of the canonical blob, echoed as the response's
        # ``fingerprint``; a later request quoting it as ``base`` takes
        # the incremental near-hit path in the worker (v3).
        fingerprint = hashlib.sha256(blob).hexdigest()
        key = result_key(blob, kind, parsed.config_overrides,
                         extra=",".join(parsed.lint_disable))
        hit = self.cache.get(key)
        if hit is not None:
            return 200, self._job_envelope(request_id, kind, hit,
                                           cached=True,
                                           fingerprint=fingerprint), {}, True

        timeout = (parsed.timeout_ms / 1000.0
                   if parsed.timeout_ms is not None
                   else self.config.default_timeout)
        job = JobRequest(id=request_id, kind=kind, blob=blob,
                         config_overrides=parsed.config_overrides,
                         lint_disable=parsed.lint_disable,
                         base=parsed.base,
                         deadline=time.monotonic() + timeout,
                         trace_ctx=(span.context().as_dict()
                                    if span is not None else None))
        try:
            payload = await self.scheduler.submit(job)
        except QueueFullError as error:
            return (429, {"error": "job queue full", "id": request_id,
                          "retry_after_s": error.retry_after},
                    {"Retry-After": f"{error.retry_after:.0f}"}, False)
        except (JobCancelledError, JobTimeoutError):
            return 504, {"error": "deadline exceeded",
                         "id": request_id,
                         "timeout_ms": int(timeout * 1000)}, {}, False
        except DrainingError:
            return 503, {"error": "draining", "id": request_id}, {}, False
        except JobFailedError as error:
            return 500, {"error": str(error), "kind": error.error_kind,
                         "id": request_id}, {}, False
        self.cache.put(key, payload)
        return 200, self._job_envelope(request_id, kind, payload,
                                       cached=False,
                                       fingerprint=fingerprint), {}, False

    @staticmethod
    def _job_envelope(request_id: str, kind: str, payload: str,
                      cached: bool, fingerprint: str = "") -> dict:
        # json.loads preserves object key order, and json.dumps with
        # default separators reproduces DisassemblyResult.to_json /
        # LintReport.to_json byte-identically -- the serving
        # determinism bar depends on this round-trip.
        field = "result" if kind == "disassemble" else "report"
        envelope = {"id": request_id, "cached": cached,
                    field: json.loads(payload)}
        if kind == "disassemble" and fingerprint:
            envelope["fingerprint"] = fingerprint
        return envelope


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def run_server(config: ServeConfig, *, announce=print) -> int:
    """Blocking entry point used by ``repro serve``."""
    app = ServeApp(config)
    try:
        asyncio.run(app.serve_forever(install_signals=True,
                                      announce=announce))
    except KeyboardInterrupt:
        pass
    return 0
