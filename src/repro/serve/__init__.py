"""Disassembly-as-a-service (``repro.serve``).

Turns the one-shot CLI stack into a long-lived service with warm
models, batching, caching, backpressure, and ops endpoints.  See
DESIGN.md ("Serving layer") for the architecture and README
("Serving") for endpoint shapes and the ops runbook.

>>> from repro.serve import ServeConfig, run_server
>>> run_server(ServeConfig(port=8080, workers=4))      # doctest: +SKIP
"""

from .access_log import AccessLog
from .cache import ResultCache, result_key
from .client import (BackpressureError, DeadlineError, ServeClient,
                     ServeError, TransportError)
from .metrics import LatencySummary, ServeMetrics
from .protocol import (PROTOCOL_VERSION, JobRequest, ProtocolError,
                       config_fingerprint, config_from_overrides,
                       encode_binary)
from .scheduler import (DrainingError, JobCancelledError, JobFailedError,
                        JobScheduler, JobTimeoutError, QueueFullError,
                        SchedulerConfig)
from .server import ServeApp, ServeConfig, run_server

__all__ = [
    "AccessLog",
    "BackpressureError",
    "DeadlineError",
    "DrainingError",
    "JobCancelledError",
    "JobFailedError",
    "JobRequest",
    "JobScheduler",
    "JobTimeoutError",
    "LatencySummary",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueFullError",
    "ResultCache",
    "SchedulerConfig",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "TransportError",
    "ServeMetrics",
    "config_fingerprint",
    "config_from_overrides",
    "encode_binary",
    "result_key",
    "run_server",
]
