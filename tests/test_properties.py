"""Property-based tests over the whole pipeline.

Hypothesis drives the synthetic compiler with random seeds/styles and
checks the invariants that must hold for *every* binary: output
instructions never overlap, every byte is classified, recall of anchored
code is total, and the oracle evaluates perfectly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Disassembler
from repro.baselines import oracle
from repro.eval.metrics import evaluate
from repro.stats.training import default_models
from repro.superset import Superset, no_overlap
from repro.synth import BinarySpec, STYLES, generate_binary

SEEDS = st.integers(min_value=100, max_value=400)
STYLE = st.sampled_from(sorted(STYLES))


def small_case(style_name: str, seed: int):
    return generate_binary(BinarySpec(name="prop",
                                      style=STYLES[style_name],
                                      function_count=6, seed=seed))


class TestPipelineInvariants:
    @given(style_name=STYLE, seed=SEEDS)
    @settings(max_examples=12, deadline=None)
    def test_output_is_a_consistent_classification(self, style_name, seed):
        case = small_case(style_name, seed)
        disassembler = Disassembler(models=default_models())
        result = disassembler.disassemble(case)

        superset = Superset.build(case.text)
        assert no_overlap(result.instruction_starts, superset)

        code = result.code_byte_offsets()
        data = result.data_byte_offsets()
        assert not code & data
        assert code | data == set(range(len(case.text)))

    @given(style_name=STYLE, seed=SEEDS)
    @settings(max_examples=12, deadline=None)
    def test_oracle_is_always_perfect(self, style_name, seed):
        case = small_case(style_name, seed)
        evaluation = evaluate(oracle(case), case.truth)
        assert evaluation.instructions.f1 == 1.0
        assert evaluation.bytes.total_errors == 0

    @given(style_name=STYLE, seed=SEEDS)
    @settings(max_examples=8, deadline=None)
    def test_high_recall_everywhere(self, style_name, seed):
        case = small_case(style_name, seed)
        disassembler = Disassembler(models=default_models())
        evaluation = evaluate(disassembler.disassemble(case), case.truth)
        assert evaluation.instructions.recall > 0.95

    @given(seed=SEEDS)
    @settings(max_examples=8, deadline=None)
    def test_generation_determinism(self, seed):
        spec = BinarySpec(name="det", function_count=5, seed=seed)
        assert generate_binary(spec).text == generate_binary(spec).text
