"""Tests for the x86-64 subset emulator and dynamic validation."""

import pytest

from repro.emulator import (Emulator, Memory,
                            validate_dynamically)
from repro.binary.image import MemoryImage
from repro.isa import Assembler, mem
from repro.isa.registers import (RAX, RBP, RCX, RDX,
                                 RSP)


def run_program(build, entry=0, **kwargs):
    a = Assembler()
    build(a)
    emulator = Emulator(a.finish())
    return emulator.run(entry, **kwargs), emulator


class TestArithmetic:
    def test_mov_and_return(self):
        result, _ = run_program(lambda a: (a.mov_ri(RAX, 42, width=32),
                                           a.ret()))
        assert result.stop_reason == "exit"
        assert result.return_value == 42

    def test_add_sub(self):
        def body(a):
            a.mov_ri(RAX, 10, width=32)
            a.alu_ri("add", RAX, 5, width=32)
            a.alu_ri("sub", RAX, 3, width=32)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 12

    def test_register_to_register_ops(self):
        def body(a):
            a.mov_ri(RCX, 6, width=32)
            a.mov_ri(RAX, 7, width=32)
            a.imul_rr(RAX, RCX)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 42

    def test_imul_three_operand(self):
        def body(a):
            a.mov_ri(RCX, 6, width=32)
            a.imul_rri(RAX, RCX, -7)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == (-42) & ((1 << 64) - 1)

    def test_logic_ops(self):
        def body(a):
            a.mov_ri(RAX, 0b1100, width=32)
            a.alu_ri("and", RAX, 0b1010, width=32)
            a.alu_ri("or", RAX, 0b0001, width=32)
            a.alu_ri("xor", RAX, 0b1111, width=32)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 0b0110

    def test_shifts(self):
        def body(a):
            a.mov_ri(RAX, 3, width=32)
            a.shift_ri("shl", RAX, 4)
            a.shift_ri("shr", RAX, 1)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 24

    def test_sar_keeps_sign(self):
        def body(a):
            a.mov_ri(RAX, -16)
            a.shift_ri("sar", RAX, 2)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == (-4) & ((1 << 64) - 1)

    def test_32_bit_write_zero_extends(self):
        def body(a):
            a.mov_ri(RAX, -1)              # all ones
            a.mov_ri(RAX, 5, width=32)     # clears upper half
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 5

    def test_inc_dec(self):
        def body(a):
            a.mov_ri(RAX, 10, width=32)
            a.inc(RAX, width=32)
            a.dec(RAX, width=32)
            a.dec(RAX, width=32)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 9

    def test_movzx_movsx(self):
        def body(a):
            a.mov_ri(RCX, 0xFF, width=32)
            a.movsx(RAX, RCX, 8, width=32)   # sign-extend 0xff -> -1
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 0xFFFFFFFF

    def test_cqo(self):
        def body(a):
            a.mov_ri(RAX, -1)
            a.cqo()
            a.mov_rr(RAX, RDX)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == (1 << 64) - 1


class TestMemory:
    def test_stack_slots(self):
        def body(a):
            a.push_r(RBP)
            a.mov_rr(RBP, RSP)
            a.alu_ri("sub", RSP, 0x10)
            a.mov_ri(RCX, 77, width=32)
            a.mov_mr(mem(base=RBP, disp=-8), RCX)
            a.mov_rm(RAX, mem(base=RBP, disp=-8))
            a.leave()
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 77

    def test_uninitialized_memory_reads_zero(self):
        def body(a):
            a.mov_rm(RAX, mem(base=RSP, disp=-64))
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 0

    def test_lea_computes_address(self):
        def body(a):
            a.mov_ri(RCX, 10, width=32)
            a.lea(RAX, mem(base=RCX, index=RCX, scale=4, disp=2))
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 52

    def test_memory_class_overlay(self):
        memory = Memory(MemoryImage.from_text(b"\x01\x02\x03\x04"))
        assert memory.read(0, 4) == 0x04030201
        memory.write(1, 0xAA, 1)
        assert memory.read(0, 4) == 0x0403AA01
        assert memory.read(0x9999, 2) == 0    # unmapped reads zero


class TestControlFlow:
    def test_branch_taken(self):
        def body(a):
            a.mov_ri(RAX, 1, width=32)
            a.alu_ri("cmp", RAX, 1, width=32)
            a.jcc("e", "yes")
            a.mov_ri(RAX, 0, width=32)
            a.ret()
            a.bind("yes")
            a.mov_ri(RAX, 99, width=32)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 99

    def test_signed_vs_unsigned_conditions(self):
        def body(a):
            a.mov_ri(RAX, -1)
            a.alu_ri("cmp", RAX, 1)
            a.jcc("l", "signed_less")       # -1 < 1 signed
            a.mov_ri(RAX, 0, width=32)
            a.ret()
            a.bind("signed_less")
            a.mov_ri(RCX, 1, width=32)
            a.alu_ri("cmp", RCX, 2)
            a.jcc("b", "unsigned_below")    # 1 < 2 unsigned
            a.mov_ri(RAX, 1, width=32)
            a.ret()
            a.bind("unsigned_below")
            a.mov_ri(RAX, 2, width=32)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 2

    def test_counted_loop(self):
        def body(a):
            a.mov_ri(RCX, 5, width=32)
            a.mov_ri(RAX, 0, width=32)
            a.bind("top")
            a.alu_ri("add", RAX, 3, width=32)
            a.dec(RCX, width=32)
            a.jcc("ne", "top")
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 15

    def test_call_and_return(self):
        def body(a):
            a.call("f")
            a.alu_ri("add", RAX, 1, width=32)
            a.ret()
            a.bind("f")
            a.mov_ri(RAX, 10, width=32)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 11

    def test_call_through_register(self):
        def body(a):
            a.mov_ri(RCX, 0, width=32)   # patched below
            a.bind("patch_me")
            a.call_r(RCX)
            a.ret()
            a.bind("f")
            a.mov_ri(RAX, 5, width=32)
            a.ret()
        a = Assembler()
        body(a)
        raw = bytearray(a.finish())
        target = a._labels["f"]
        raw[1:5] = target.to_bytes(4, "little")   # fix the mov imm32
        emulator = Emulator(bytes(raw))
        result = emulator.run(0)
        assert result.return_value == 5

    def test_jump_table_dispatch(self):
        from repro.isa import Mem
        def body(a):
            a.mov_ri(RCX, 1, width=32)
            a.jmp_m(Mem(index=RCX, scale=8, disp_label="table"))
            a.bind("case0")
            a.mov_ri(RAX, 100, width=32)
            a.ret()
            a.bind("case1")
            a.mov_ri(RAX, 200, width=32)
            a.ret()
            a.align(8, b"\xcc")
            a.bind("table")
            a.dq_label("case0")
            a.dq_label("case1")
        result, _ = run_program(body)
        assert result.return_value == 200

    def test_setcc_and_cmov(self):
        def body(a):
            a.mov_ri(RCX, 3, width=32)
            a.alu_ri("cmp", RCX, 3, width=32)
            a.setcc("e", RAX)
            a.movzx(RAX, RAX, 8, width=32)
            a.mov_ri(RDX, 9, width=32)
            a.alu_ri("cmp", RCX, 5, width=32)
            a.cmovcc("l", RAX, RDX)
            a.ret()
        result, _ = run_program(body)
        assert result.return_value == 9

    def test_hlt_stops(self):
        result, _ = run_program(lambda a: a.hlt())
        assert result.stop_reason == "halt"

    def test_ud2_stops(self):
        result, _ = run_program(lambda a: a.ud2())
        assert result.stop_reason == "halt"

    def test_int3_stops(self):
        result, _ = run_program(lambda a: a.int3())
        assert result.stop_reason == "trap"

    def test_step_limit(self):
        def body(a):
            a.bind("spin")
            a.jmp("spin")
        result, _ = run_program(body, max_steps=100)
        assert result.stop_reason == "steps"
        assert result.steps == 100

    def test_unsupported_instruction(self):
        result, _ = run_program(lambda a: (a.cdq(), a.unary("div", RCX)))
        assert result.stop_reason == "unsupported"


class TestFlags:
    @pytest.mark.parametrize("cc,expected", [
        (4, False), (5, True),    # e / ne on 5 vs 3
        (12, False), (15, True),  # l / g
        (2, False), (7, True),    # b / a
    ])
    def test_condition_evaluation_after_cmp(self, cc, expected):
        emulator = Emulator(b"\x90")
        emulator._flags_sub(5, 3, 64)
        assert emulator.flags.condition(cc) is expected

    def test_overflow_flag(self):
        emulator = Emulator(b"\x90")
        emulator._flags_add(0x7FFFFFFF, 1, 32)
        assert emulator.flags.of
        assert emulator.flags.sf

    def test_carry_flag(self):
        emulator = Emulator(b"\x90")
        emulator._flags_sub(1, 2, 32)
        assert emulator.flags.cf

    def test_parity_flag(self):
        emulator = Emulator(b"\x90")
        emulator._flags_logic(0b11, 32)
        assert emulator.flags.pf          # two bits set: even parity


class TestDynamicValidation:
    def test_generated_binaries_execute_within_truth(self, all_cases):
        """Every executed offset is a ground-truth instruction start --
        the strongest possible check of generator correctness."""
        for case in all_cases:
            entries = tuple(sorted(case.truth.function_entries))[:10]
            report = validate_dynamically(case, set(), entries=entries,
                                          max_steps=50_000)
            assert not report["executed_not_in_truth"], case.name
            assert report["executed"], case.name

    def test_disassembler_covers_everything_executed(self, disassembler,
                                                     msvc_case):
        """Dynamic recall check: the tool's predictions must include
        every instruction the emulator actually executes."""
        result = disassembler.disassemble(msvc_case)
        entries = tuple(sorted(msvc_case.truth.function_entries))[:10]
        report = validate_dynamically(msvc_case,
                                      result.instruction_starts,
                                      entries=entries, max_steps=50_000)
        assert not report["executed_missed"]
