"""Tests for the serving result cache (`repro.serve.cache`)."""

from repro.serve.cache import ResultCache, result_key


class TestResultKey:
    def test_same_request_same_key(self):
        assert result_key(b"blob", "disassemble", None) == \
            result_key(b"blob", "disassemble", None)

    def test_key_varies_with_every_component(self):
        base = result_key(b"blob", "disassemble", None)
        assert result_key(b"other", "disassemble", None) != base
        assert result_key(b"blob", "lint", None) != base
        assert result_key(b"blob", "disassemble",
                          {"use_lint_feedback": True}) != base
        assert result_key(b"blob", "disassemble", None,
                          extra="orphan-code") != base

    def test_empty_overrides_key_like_none(self):
        assert result_key(b"blob", "disassemble", {}) == \
            result_key(b"blob", "disassemble", None)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", "payload")
        assert cache.get("k") == "payload"
        assert cache.stats() == {"entries": 1, "max_entries": 4,
                                 "hits": 1, "misses": 1, "evictions": 0}

    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", "1")
        cache.put("b", "2")
        assert cache.get("a") == "1"        # refresh "a"
        cache.put("c", "3")                 # evicts "b", not "a"
        assert cache.get("b") is None
        assert cache.get("a") == "1"
        assert cache.get("c") == "3"
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_overwrite_does_not_grow(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", "1")
        cache.put("a", "updated")
        assert len(cache) == 1
        assert cache.get("a") == "updated"
        assert cache.evictions == 0

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(max_entries=0)
        cache.put("a", "1")
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = ResultCache(max_entries=4)
        cache.put("a", "1")
        cache.clear()
        assert cache.get("a") is None
        assert len(cache) == 0
