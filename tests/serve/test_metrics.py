"""Tests for serving metrics and the JSONL access log."""

import io
import json

from repro.serve.access_log import AccessLog
from repro.serve.metrics import LatencySummary, ServeMetrics


class TestLatencySummary:
    def test_empty_summary_is_all_zero(self):
        summary = LatencySummary()
        assert summary.mean == 0.0
        assert summary.as_dict() == {"count": 0, "total_s": 0.0,
                                     "mean_s": 0.0, "min_s": 0.0,
                                     "max_s": 0.0}

    def test_records_min_max_mean(self):
        summary = LatencySummary()
        for seconds in (0.1, 0.3, 0.2):
            summary.record(seconds)
        out = summary.as_dict()
        assert out["count"] == 3
        assert out["min_s"] == 0.1
        assert out["max_s"] == 0.3
        assert abs(out["mean_s"] - 0.2) < 1e-9


class TestServeMetrics:
    def test_request_counting_and_latency(self):
        metrics = ServeMetrics()
        metrics.record_request("/healthz", 200, 0.001)
        metrics.record_request("/v1/disassemble", 200, 0.5)
        metrics.record_request("/v1/disassemble", 429, 0.002)
        snap = metrics.snapshot()
        assert snap["requests"] == {"/healthz:200": 1,
                                    "/v1/disassemble:200": 1,
                                    "/v1/disassemble:429": 1}
        assert snap["latency"]["/v1/disassemble"]["count"] == 2

    def test_batching_and_queue_stats(self):
        metrics = ServeMetrics()
        metrics.record_batch(3)
        metrics.record_batch(5)
        metrics.record_queue_depth(7)
        metrics.record_queue_depth(2)
        snap = metrics.snapshot()
        assert snap["batching"] == {"batches": 2, "batched_jobs": 8,
                                    "mean_batch_size": 4.0}
        assert snap["queue"]["depth"] == 2
        assert snap["queue"]["peak"] == 7

    def test_worker_phase_merge_skips_total(self):
        metrics = ServeMetrics()
        metrics.merge_worker_phases({"superset": 0.5, "scoring": 0.25,
                                     "total": 0.75})
        metrics.merge_worker_phases({"superset": 0.5})
        phases = metrics.snapshot()["worker_phases_s"]
        assert phases["superset"] == 1.0
        assert phases["scoring"] == 0.25
        # "total" from as_dict() dumps is recomputed, never accumulated.
        assert phases["total"] == 1.25

    def test_snapshot_embeds_cache_stats_and_extra(self):
        metrics = ServeMetrics()
        snap = metrics.snapshot(cache_stats={"hits": 3},
                                extra={"queue": {"depth": 9}})
        assert snap["cache"] == {"hits": 3}
        assert snap["queue"] == {"depth": 9}


class TestAccessLog:
    def test_writes_one_sorted_json_object_per_line(self):
        stream = io.StringIO()
        log = AccessLog(stream=stream)
        log.record(id="r1", status=200, endpoint="/healthz")
        log.record(id="r2", status=404, endpoint="/nope")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["id"] == "r1"
        assert first["status"] == 200
        assert "ts" in first
        keys = list(json.loads(lines[1]))
        assert keys == sorted(keys)
        assert log.lines_written == 2

    def test_file_target_appends_jsonl(self, tmp_path):
        path = tmp_path / "logs" / "access.jsonl"
        log = AccessLog(path=path)
        log.record(id="r1", status=200)
        log.close()
        log = AccessLog(path=path)
        log.record(id="r2", status=200)
        log.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["id"] for r in records] == ["r1", "r2"]

    def test_disabled_log_writes_nothing(self):
        stream = io.StringIO()
        log = AccessLog(stream=stream, enabled=False)
        log.record(id="r1")
        assert stream.getvalue() == ""

    def test_write_failure_disables_instead_of_raising(self):
        stream = io.StringIO()
        log = AccessLog(stream=stream)
        stream.close()
        log.record(id="r1")          # must not raise
        assert log.enabled is False
        log.record(id="r2")          # still quiet after self-disable

    def test_close_is_idempotent_and_silences_record(self):
        stream = io.StringIO()
        log = AccessLog(stream=stream)
        log.close()
        log.close()
        log.record(id="r1")
        assert log.enabled is False
