"""Tests for the job scheduler: batching, backpressure, deadlines, drain.

These drive :class:`~repro.serve.scheduler.JobScheduler` directly on a
private event loop with ``workers=0`` (inline thread execution) and a
monkeypatched ``run_batch``, so queueing semantics are tested without
paying for real disassembly.  ``run_batch`` is resolved as a module
global at dispatch time, which is what makes the monkeypatch visible.
"""

import asyncio
import threading
import time

import pytest

from repro.serve import scheduler as sched_mod
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import JobRequest
from repro.serve.scheduler import (DrainingError, JobFailedError,
                                   JobScheduler, JobTimeoutError,
                                   QueueFullError, SchedulerConfig)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30.0))


def make_scheduler(**overrides) -> JobScheduler:
    config = SchedulerConfig(**{"workers": 0, **overrides})
    return JobScheduler(config, metrics=ServeMetrics())


def job(job_id: str, deadline: float = float("inf")) -> JobRequest:
    return JobRequest(id=job_id, kind="disassemble", blob=b"blob",
                      deadline=deadline)


def echo_batch(items):
    """A run_batch stand-in: each job succeeds with its own id."""
    return ([(job_id, True, f"payload-{job_id}", "")
             for job_id, *_ in items], {"superset": 0.001})


class GatedBatch:
    """A run_batch stand-in that blocks until .release() is called."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls: list[list[str]] = []

    def __call__(self, items):
        self.calls.append([job_id for job_id, *_ in items])
        assert self.gate.wait(20.0), "test forgot to release the gate"
        return echo_batch(items)

    def release(self):
        self.gate.set()


class TestExecution:
    def test_submit_returns_worker_payload(self, monkeypatch):
        monkeypatch.setattr(sched_mod, "run_batch", echo_batch)
        scheduler = make_scheduler()

        async def go():
            await scheduler.start()
            try:
                return await scheduler.submit(job("j1"))
            finally:
                await scheduler.stop()

        assert run(go()) == "payload-j1"
        assert scheduler.metrics.jobs_submitted == 1
        assert scheduler.metrics.jobs_completed == 1
        # Worker phase timings flow back into the shared metrics.
        assert scheduler.metrics.worker_phases.phases["superset"] > 0

    def test_worker_failure_becomes_job_failed_error(self, monkeypatch):
        def failing_batch(items):
            return ([(job_id, False, "kaboom", "RuntimeError")
                     for job_id, *_ in items], {})

        monkeypatch.setattr(sched_mod, "run_batch", failing_batch)
        scheduler = make_scheduler()

        async def go():
            await scheduler.start()
            try:
                with pytest.raises(JobFailedError, match="kaboom") as exc:
                    await scheduler.submit(job("j1"))
                return exc.value.error_kind
            finally:
                await scheduler.stop()

        assert run(go()) == "RuntimeError"
        assert scheduler.metrics.jobs_failed == 1

    def test_micro_batch_coalesces_burst(self, monkeypatch):
        gated = GatedBatch()
        monkeypatch.setattr(sched_mod, "run_batch", gated)
        scheduler = make_scheduler(batch_max=8, batch_window=0.05)

        async def go():
            await scheduler.start()
            try:
                tasks = [asyncio.ensure_future(scheduler.submit(job(f"j{i}")))
                         for i in range(3)]
                await asyncio.sleep(0)      # let all three enqueue
                gated.release()
                return await asyncio.gather(*tasks)
            finally:
                await scheduler.stop()

        payloads = run(go())
        assert sorted(payloads) == ["payload-j0", "payload-j1",
                                    "payload-j2"]
        # The linger window turned the burst into a single batch.
        assert gated.calls == [["j0", "j1", "j2"]]
        assert scheduler.metrics.batches == 1
        assert scheduler.metrics.batched_jobs == 3


class TestBackpressure:
    def test_queue_full_rejects_with_retry_hint(self, monkeypatch):
        gated = GatedBatch()
        monkeypatch.setattr(sched_mod, "run_batch", gated)
        scheduler = make_scheduler(max_queue=1, batch_max=1)

        async def go():
            await scheduler.start()
            try:
                first = asyncio.ensure_future(scheduler.submit(job("j1")))
                # Wait for the dispatcher to hand j1 to the (blocked)
                # worker so the single worker slot is occupied.
                while not gated.calls:
                    await asyncio.sleep(0.005)
                second = asyncio.ensure_future(scheduler.submit(job("j2")))
                await asyncio.sleep(0.02)   # j2 sits queued: queue is full
                with pytest.raises(QueueFullError) as exc:
                    await scheduler.submit(job("j3"))
                gated.release()
                await asyncio.gather(first, second)
                return exc.value.retry_after
            finally:
                await scheduler.stop()

        retry_after = run(go())
        assert retry_after >= 1.0
        assert scheduler.metrics.rejected_queue_full == 1
        # j3 never entered the queue; j1 and j2 both completed.
        assert scheduler.metrics.jobs_completed == 2
        assert [call for call in gated.calls] == [["j1"], ["j2"]]


class TestDeadlines:
    def test_expired_queued_job_is_cancelled_not_run(self, monkeypatch):
        gated = GatedBatch()
        monkeypatch.setattr(sched_mod, "run_batch", gated)
        scheduler = make_scheduler(batch_max=1)

        async def go():
            await scheduler.start()
            try:
                first = asyncio.ensure_future(scheduler.submit(job("j1")))
                while not gated.calls:
                    await asyncio.sleep(0.005)
                # j2's deadline expires while it waits for the slot.
                deadline = time.monotonic() + 0.05
                with pytest.raises(JobTimeoutError):
                    await scheduler.submit(job("j2", deadline=deadline))
                gated.release()
                await first
                # Give the dispatcher a beat to pop and cancel j2.
                await asyncio.sleep(0.05)
            finally:
                await scheduler.stop()

        run(go())
        # j2 never reached a worker: the dispatcher discarded it.
        assert gated.calls == [["j1"]]
        assert scheduler.metrics.jobs_timed_out == 1
        assert scheduler.metrics.jobs_cancelled == 1

    def test_timeout_while_running_drops_late_result(self, monkeypatch):
        gated = GatedBatch()
        monkeypatch.setattr(sched_mod, "run_batch", gated)
        scheduler = make_scheduler()

        async def go():
            await scheduler.start()
            try:
                deadline = time.monotonic() + 0.05
                with pytest.raises(JobTimeoutError):
                    await scheduler.submit(job("j1", deadline=deadline))
                gated.release()             # worker finishes too late
                await asyncio.sleep(0.05)
            finally:
                await scheduler.stop()

        run(go())
        assert gated.calls == [["j1"]]      # it did run...
        assert scheduler.metrics.jobs_timed_out == 1
        # ...and its late completion is still accounted as completed
        # work, just never delivered to the (gone) caller.
        assert scheduler.metrics.jobs_completed == 1


class TestDrain:
    def test_drain_finishes_queued_work(self, monkeypatch):
        monkeypatch.setattr(sched_mod, "run_batch", echo_batch)
        scheduler = make_scheduler(batch_max=2)

        async def go():
            await scheduler.start()
            tasks = [asyncio.ensure_future(scheduler.submit(job(f"j{i}")))
                     for i in range(5)]
            await asyncio.sleep(0)
            await scheduler.drain()
            return await asyncio.gather(*tasks)

        payloads = run(go())
        assert len(payloads) == 5
        assert scheduler.metrics.jobs_completed == 5

    def test_draining_scheduler_rejects_new_work(self, monkeypatch):
        monkeypatch.setattr(sched_mod, "run_batch", echo_batch)
        scheduler = make_scheduler()

        async def go():
            await scheduler.start()
            await scheduler.drain()
            with pytest.raises(DrainingError):
                await scheduler.submit(job("late"))

        run(go())

    def test_stop_fails_queued_jobs_immediately(self, monkeypatch):
        gated = GatedBatch()
        monkeypatch.setattr(sched_mod, "run_batch", gated)
        scheduler = make_scheduler(batch_max=1)

        async def go():
            await scheduler.start()
            first = asyncio.ensure_future(scheduler.submit(job("j1")))
            while not gated.calls:
                await asyncio.sleep(0.005)
            second = asyncio.ensure_future(scheduler.submit(job("j2")))
            await asyncio.sleep(0.02)
            gated.release()
            await scheduler.stop()
            results = await asyncio.gather(first, second,
                                           return_exceptions=True)
            return results

        first, second = run(go())
        assert first == "payload-j1"
        assert isinstance(second, DrainingError)
