"""End-to-end tests of the serving HTTP API.

A real :class:`ServeApp` runs on an ephemeral port (see ``conftest``)
and is driven through :class:`ServeClient` -- full HTTP round trips.
The flagship assertion is serving determinism: the ``result`` object in
a ``/v1/disassemble`` response re-serializes byte-identically to the
offline ``repro disasm --json`` output for the same container.
"""

import json
import threading
import time

import pytest

from repro.core.disassembler import Disassembler
from repro.serve import scheduler as sched_mod
from repro.serve.client import (BackpressureError, DeadlineError,
                                ServeError)


def fake_echo_batch(items):
    """run_batch stand-in whose payloads are valid JSON documents."""
    return ([(job_id, True, json.dumps({"echo": job_id}), "")
             for job_id, *_ in items], {})


class GatedBatch:
    def __init__(self):
        self.gate = threading.Event()
        self.calls = []

    def __call__(self, items):
        self.calls.append([job_id for job_id, *_ in items])
        assert self.gate.wait(20.0), "test forgot to release the gate"
        return fake_echo_batch(items)


class TestEndToEnd:
    def test_disassemble_matches_offline_output_byte_for_byte(
            self, serve_harness, msvc_blob, msvc_case):
        client = serve_harness().client()
        body = client.disassemble(msvc_blob)
        offline = Disassembler().disassemble_rich(msvc_case.binary)
        served = json.dumps(body["result"])
        assert served == offline.result.to_json()
        assert body["cached"] is False
        assert body["id"].startswith("r")

    def test_repeat_request_served_from_cache(self, serve_harness,
                                              msvc_blob):
        client = serve_harness().client()
        first = client.disassemble(msvc_blob)
        second = client.disassemble(msvc_blob)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["result"] == first["result"]
        cache = client.metrics()["cache"]
        assert cache["hits"] == 1
        assert cache["misses"] == 1

    def test_config_override_is_a_cache_miss_and_applies(
            self, serve_harness, msvc_blob):
        client = serve_harness().client()
        client.disassemble(msvc_blob)
        overridden = client.disassemble(
            msvc_blob, config={"use_lint_feedback": True})
        assert overridden["cached"] is False
        assert client.metrics()["cache"]["hits"] == 0

    def test_lint_endpoint_returns_report(self, serve_harness, msvc_blob):
        client = serve_harness().client()
        body = client.lint(msvc_blob)
        report = body["report"]
        assert "diagnostics" in report
        assert body["cached"] is False
        # A disabled rule must key separately from the default run.
        again = client.lint(msvc_blob, disable=("orphan-code",))
        assert again["cached"] is False

    def test_healthz_and_metrics_shapes(self, serve_harness, msvc_blob):
        client = serve_harness().client()
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 0
        assert health["queue_depth"] == 0

        client.disassemble(msvc_blob)
        snap = client.metrics()
        assert snap["requests"]["/v1/disassemble:200"] == 1
        assert snap["jobs"]["submitted"] == 1
        assert snap["jobs"]["completed"] == 1
        assert snap["batching"]["batches"] == 1
        assert snap["latency"]["/v1/disassemble"]["count"] == 1
        # Worker phase timings made it back from the job execution.
        assert snap["worker_phases_s"]["superset"] > 0

    def test_access_log_records_requests(self, serve_harness, msvc_blob,
                                         tmp_path, monkeypatch):
        monkeypatch.setattr(sched_mod, "run_batch", fake_echo_batch)
        path = tmp_path / "access.jsonl"
        harness = serve_harness(access_log_enabled=True,
                                access_log_path=str(path))
        client = harness.client()
        client.healthz()
        client.disassemble(msvc_blob)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        endpoints = [r["endpoint"] for r in records if "endpoint" in r]
        assert endpoints == ["/healthz", "/v1/disassemble"]
        assert all("id" in r and "latency_ms" in r
                   for r in records if "endpoint" in r)


class TestContentTypes:
    """Wire-protocol content-type promises, asserted header-for-header."""

    @pytest.fixture
    def client(self, serve_harness, monkeypatch):
        monkeypatch.setattr(sched_mod, "run_batch", fake_echo_batch)
        return serve_harness().client()

    def test_json_endpoints_answer_application_json(self, client):
        for path in ("/healthz", "/metrics"):
            _, headers, _ = client.request("GET", path)
            assert headers["content-type"] == "application/json", path

    def test_prometheus_exposition_content_type(self, client):
        # The exposition-format version header is part of the scrape
        # contract: Prometheus keys its parser off it.
        status, headers, body = client.request(
            "GET", "/metrics?format=prometheus")
        assert status == 200
        assert headers["content-type"] \
            == "text/plain; version=0.0.4; charset=utf-8"
        assert isinstance(body, str)


class TestHttpErrors:
    @pytest.fixture
    def client(self, serve_harness, monkeypatch):
        monkeypatch.setattr(sched_mod, "run_batch", fake_echo_batch)
        return serve_harness().client()

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServeError) as exc:
            client._checked("GET", "/v2/nope")
        assert exc.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServeError) as exc:
            client._checked("GET", "/v1/disassemble")
        assert exc.value.status == 405
        with pytest.raises(ServeError) as exc:
            client._checked("POST", "/healthz", {})
        assert exc.value.status == 405

    def test_malformed_json_400(self, client):
        status, _, body = client.request("POST", "/v1/disassemble")
        assert status == 400
        assert "JSON" in body["error"]

    def test_bad_base64_400(self, client):
        with pytest.raises(ServeError) as exc:
            client._checked("POST", "/v1/disassemble",
                            {"binary_b64": "!!!"})
        assert exc.value.status == 400

    def test_garbage_container_rejected_before_queueing(self, client):
        import base64
        with pytest.raises(ServeError) as exc:
            client._checked("POST", "/v1/disassemble", {
                "binary_b64": base64.b64encode(b"not a container").decode()})
        assert exc.value.status == 400
        assert "container" in exc.value.body["error"]
        assert client.metrics()["jobs"]["submitted"] == 0

    def test_unknown_config_field_400(self, client, msvc_blob):
        with pytest.raises(ServeError) as exc:
            client.disassemble(msvc_blob, config={"no_such_knob": 1})
        assert exc.value.status == 400
        assert "no_such_knob" in exc.value.body["error"]

    def test_unknown_lint_rule_400(self, client, msvc_blob):
        with pytest.raises(ServeError) as exc:
            client.lint(msvc_blob, disable=("definitely-not-a-rule",))
        assert exc.value.status == 400
        assert "definitely-not-a-rule" in exc.value.body["error"]

    def test_oversized_body_413(self, serve_harness, monkeypatch,
                                msvc_blob):
        monkeypatch.setattr(sched_mod, "run_batch", fake_echo_batch)
        client = serve_harness(max_body=1024).client()
        with pytest.raises(ServeError) as exc:
            client.disassemble(msvc_blob)
        assert exc.value.status == 413

    def test_every_response_carries_request_id(self, client):
        status, headers, body = client.request("GET", "/nope")
        assert status == 404
        assert headers["x-request-id"].startswith("r")


class TestOverload:
    def test_queue_full_answers_429_with_retry_after(
            self, serve_harness, monkeypatch, msvc_blob):
        gated = GatedBatch()
        monkeypatch.setattr(sched_mod, "run_batch", gated)
        harness = serve_harness(max_queue=1, batch_max=1)
        client = harness.client()

        results = {}

        def post(name):
            try:
                results[name] = client.disassemble(msvc_blob)
            except Exception as error:  # noqa: BLE001 -- inspected below
                results[name] = error

        t1 = threading.Thread(target=post, args=("first",))
        t1.start()
        deadline = time.monotonic() + 10
        while not gated.calls and time.monotonic() < deadline:
            time.sleep(0.01)                # first job now holds the slot
        t2 = threading.Thread(target=post, args=("second",))
        t2.start()
        deadline = time.monotonic() + 10
        while harness.app.scheduler.queue_depth() < 1 and \
                time.monotonic() < deadline:
            time.sleep(0.01)                # second job fills the queue

        with pytest.raises(BackpressureError) as exc:
            client.disassemble(msvc_blob)
        assert exc.value.status == 429
        assert exc.value.retry_after >= 1.0
        assert exc.value.body["retry_after_s"] >= 1.0

        gated.gate.set()
        t1.join(20)
        t2.join(20)
        assert results["first"]["result"] == {"echo": results["first"]["id"]}
        # The second request was queued before the first one could
        # populate the cache, so it computed its own result.
        assert results["second"]["result"] == \
            {"echo": results["second"]["id"]}
        assert client.metrics()["jobs"]["rejected_queue_full"] == 1

    def test_deadline_expiry_answers_504_and_cancels_job(
            self, serve_harness, monkeypatch, msvc_blob):
        gated = GatedBatch()
        monkeypatch.setattr(sched_mod, "run_batch", gated)
        harness = serve_harness(batch_max=1)
        client = harness.client()

        stuck = threading.Thread(target=lambda: self._swallow(
            client.disassemble, msvc_blob))
        stuck.start()
        deadline = time.monotonic() + 10
        while not gated.calls and time.monotonic() < deadline:
            time.sleep(0.01)

        # The worker slot is held, so this job expires while queued:
        # the scheduler must cancel it without ever running it.
        with pytest.raises(DeadlineError) as exc:
            client.disassemble(msvc_blob, timeout_ms=100)
        assert exc.value.status == 504
        assert exc.value.body["timeout_ms"] == 100

        gated.gate.set()
        stuck.join(20)
        deadline = time.monotonic() + 10
        while client.metrics()["jobs"]["cancelled"] < 1 and \
                time.monotonic() < deadline:
            time.sleep(0.01)
        jobs = client.metrics()["jobs"]
        assert jobs["timed_out"] == 1
        assert jobs["cancelled"] == 1
        assert gated.calls == [[gated.calls[0][0]]]  # only the stuck job ran

    @staticmethod
    def _swallow(fn, *args):
        try:
            fn(*args)
        except Exception:  # noqa: BLE001 -- irrelevant to the assertion
            pass


class TestGracefulDrain:
    def test_drain_completes_in_flight_request(self, serve_harness,
                                               monkeypatch, msvc_blob):
        gated = GatedBatch()
        monkeypatch.setattr(sched_mod, "run_batch", gated)
        harness = serve_harness()
        client = harness.client()

        results = {}

        def post():
            results["body"] = client.disassemble(msvc_blob)

        worker = threading.Thread(target=post)
        worker.start()
        deadline = time.monotonic() + 10
        while not gated.calls and time.monotonic() < deadline:
            time.sleep(0.01)

        # Begin graceful shutdown while the job is still running (the
        # same path the SIGTERM handler takes).
        harness.loop.call_soon_threadsafe(harness.app.initiate_drain)
        time.sleep(0.1)
        assert harness._thread.is_alive()   # drain waits for the job

        gated.gate.set()
        worker.join(20)
        harness._thread.join(20)
        assert not harness._thread.is_alive()
        assert results["body"]["result"] == {"echo": results["body"]["id"]}


class TestFormatIngestion:
    """ELF payloads are canonicalized at admission (protocol v2)."""

    def test_elf_payload_matches_container_payload(
            self, serve_harness, msvc_case, msvc_blob):
        from repro.formats import emit_elf
        client = serve_harness().client()
        via_elf = client.disassemble(emit_elf(msvc_case.binary))
        via_container = client.disassemble(msvc_blob)
        assert via_elf["result"] == via_container["result"]
        # Admission canonicalizes the ELF to container bytes, so the
        # two ingestion paths share a single cache entry.
        assert via_elf["cached"] is False
        assert via_container["cached"] is True

    def test_explicit_format_field(self, serve_harness, msvc_case):
        from repro.formats import emit_elf
        client = serve_harness().client()
        body = client.disassemble(emit_elf(msvc_case.binary),
                                  format="elf64")
        offline = Disassembler().disassemble_rich(msvc_case.binary)
        assert json.dumps(body["result"]) == offline.result.to_json()

    def test_declared_format_mismatch_400(self, serve_harness,
                                          msvc_case):
        from repro.formats import emit_elf
        client = serve_harness().client()
        with pytest.raises(ServeError) as exc:
            client.disassemble(emit_elf(msvc_case.binary), format="rprb")
        assert exc.value.status == 400
        assert "magic says" in exc.value.body["error"]

    def test_unknown_format_field_400(self, serve_harness, msvc_blob):
        client = serve_harness().client()
        with pytest.raises(ServeError) as exc:
            client.disassemble(msvc_blob, format="macho")
        assert exc.value.status == 400
        assert "macho" in exc.value.body["error"]

    def test_lint_accepts_elf(self, serve_harness, msvc_case):
        from repro.formats import emit_elf
        client = serve_harness().client()
        body = client.lint(emit_elf(msvc_case.binary))
        assert "diagnostics" in body["report"]


class TestIncrementalNearHit:
    def _patched(self, blob):
        import dataclasses
        from repro.binary.container import Binary
        binary = Binary.from_bytes(blob)
        text = bytearray(binary.text.data)
        text[len(text) // 2] ^= 0xFF
        new_text = dataclasses.replace(binary.text, data=bytes(text))
        sections = tuple(new_text if s is binary.text else s
                         for s in binary.sections)
        return dataclasses.replace(binary, sections=sections).to_bytes()

    def test_response_carries_fingerprint(self, serve_harness, msvc_blob):
        import hashlib
        client = serve_harness().client()
        body = client.disassemble(msvc_blob)
        assert body["fingerprint"] == hashlib.sha256(msvc_blob).hexdigest()
        # Cache hits echo it too (the client needs it for the next base).
        again = client.disassemble(msvc_blob)
        assert again["cached"] is True
        assert again["fingerprint"] == body["fingerprint"]

    def test_base_near_hit_is_byte_identical_to_cold(self, serve_harness,
                                                     gcc_blob):
        import json
        from repro.binary.container import Binary
        client = serve_harness().client()
        first = client.disassemble(gcc_blob)
        patched = self._patched(gcc_blob)
        near = client.disassemble(patched, base=first["fingerprint"])
        assert near["cached"] is False
        assert near["fingerprint"] != first["fingerprint"]
        offline = Disassembler().disassemble_rich(Binary.from_bytes(patched))
        assert json.dumps(near["result"]) == offline.result.to_json()

    def test_unknown_base_still_answers_cold(self, serve_harness,
                                             gcc_blob):
        client = serve_harness().client()
        body = client.disassemble(gcc_blob, base="ab" * 32)
        assert "result" in body

    def test_malformed_base_is_rejected(self, serve_harness, gcc_blob):
        client = serve_harness().client()
        with pytest.raises(ServeError) as excinfo:
            client.disassemble(gcc_blob, base="not-a-fingerprint")
        assert excinfo.value.status == 400
