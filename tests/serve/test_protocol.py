"""Tests for the serving wire protocol (`repro.serve.protocol`)."""

import base64
import dataclasses

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.serve.protocol import (JobRequest, ProtocolError,
                                  config_fingerprint,
                                  config_from_overrides,
                                  decode_binary_field, encode_binary,
                                  parse_job_body)


class TestBinaryField:
    def test_round_trip(self):
        blob = bytes(range(256))
        assert decode_binary_field(
            {"binary_b64": encode_binary(blob)}) == blob

    def test_missing_field_rejected(self):
        with pytest.raises(ProtocolError, match="binary_b64"):
            decode_binary_field({})

    def test_non_string_rejected(self):
        with pytest.raises(ProtocolError, match="binary_b64"):
            decode_binary_field({"binary_b64": 42})

    def test_invalid_base64_rejected(self):
        with pytest.raises(ProtocolError, match="base64"):
            decode_binary_field({"binary_b64": "!!!not base64!!!"})


class TestConfigHandling:
    def test_no_overrides_is_default_config(self):
        assert config_from_overrides(None) is DEFAULT_CONFIG
        assert config_from_overrides({}) is DEFAULT_CONFIG

    def test_known_override_applies(self):
        config = config_from_overrides({"use_lint_feedback": True})
        assert config.use_lint_feedback is True

    def test_unknown_field_is_client_error(self):
        with pytest.raises(ProtocolError, match="no_such_knob") as exc:
            config_from_overrides({"no_such_knob": 1})
        assert exc.value.status == 400

    def test_fingerprint_stable_and_default_equals_empty(self):
        assert config_fingerprint(None) == config_fingerprint(None)
        assert config_fingerprint(None) == config_fingerprint({})

    def test_fingerprint_changes_with_config(self):
        assert config_fingerprint(None) != \
            config_fingerprint({"use_lint_feedback": True})

    def test_explicit_default_override_shares_fingerprint(self):
        # Overriding a field to its default value resolves to the same
        # effective config, so the cache key must not fork.
        name = dataclasses.fields(DEFAULT_CONFIG)[0].name
        value = getattr(DEFAULT_CONFIG, name)
        assert config_fingerprint({name: value}) == config_fingerprint(None)


class TestJobRequest:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="kind"):
            JobRequest(id="j1", kind="transpile", blob=b"")

    def test_worker_item_is_flat_and_complete(self):
        job = JobRequest(id="j1", kind="lint", blob=b"abc",
                         config_overrides={"use_lint_feedback": True},
                         lint_disable=("orphan-code",))
        assert job.worker_item() == (
            "j1", "lint", b"abc", {"use_lint_feedback": True},
            ("orphan-code",))


class TestParseJobBody:
    def body(self, **extra):
        return {"binary_b64": base64.b64encode(b"blob").decode(), **extra}

    def test_minimal_disassemble_body(self):
        parsed = parse_job_body(self.body(), "disassemble")
        assert parsed.blob == b"blob"
        assert parsed.config_overrides is None
        assert parsed.timeout_ms is None
        assert parsed.lint_disable == ()

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_job_body(["nope"], "disassemble")

    def test_config_must_be_object(self):
        with pytest.raises(ProtocolError, match="'config'"):
            parse_job_body(self.body(config=[1]), "disassemble")

    def test_config_fields_validated_early(self):
        with pytest.raises(ProtocolError, match="typo_field"):
            parse_job_body(self.body(config={"typo_field": 1}),
                           "disassemble")

    @pytest.mark.parametrize("bad", [0, -5, 1.5, "100"])
    def test_timeout_must_be_positive_int(self, bad):
        with pytest.raises(ProtocolError, match="timeout_ms"):
            parse_job_body(self.body(timeout_ms=bad), "disassemble")

    def test_lint_disable_parsed_only_for_lint(self):
        body = self.body(disable=["orphan-code", "padding-as-code"])
        assert parse_job_body(body, "lint").lint_disable == \
            ("orphan-code", "padding-as-code")
        assert parse_job_body(body, "disassemble").lint_disable == ()

    def test_lint_disable_must_be_string_list(self):
        with pytest.raises(ProtocolError, match="'disable'"):
            parse_job_body(self.body(disable="orphan-code"), "lint")


class TestBaseFingerprint:
    def body(self, **extra):
        return {"binary_b64": base64.b64encode(b"blob").decode(), **extra}

    def test_worker_item_appends_base_when_set(self):
        job = JobRequest(id="j1", kind="disassemble", blob=b"abc",
                         base="f" * 64)
        assert job.worker_item() == (
            "j1", "disassemble", b"abc", None, (), "f" * 64)

    def test_worker_item_pads_base_before_trace_ctx(self):
        # The span context is always the seventh element, so workers
        # can unpack positionally.
        ctx = {"trace_id": "t", "span_id": "s"}
        job = JobRequest(id="j1", kind="disassemble", blob=b"abc",
                         trace_ctx=ctx)
        assert job.worker_item() == (
            "j1", "disassemble", b"abc", None, (), "", ctx)

    def test_valid_base_parsed_for_disassemble(self):
        parsed = parse_job_body(self.body(base="a" * 64), "disassemble")
        assert parsed.base == "a" * 64

    def test_base_defaults_to_empty(self):
        assert parse_job_body(self.body(), "disassemble").base == ""

    def test_base_ignored_for_lint(self):
        assert parse_job_body(self.body(base="a" * 64), "lint").base == ""

    @pytest.mark.parametrize("bad", ["short", "A" * 64, "g" * 64, 7])
    def test_malformed_base_rejected(self, bad):
        with pytest.raises(ProtocolError, match="base"):
            parse_job_body(self.body(base=bad), "disassemble")
