"""Serving-layer observability: health, Prometheus exposition, tracing."""

import json

from repro.obs.schema import validate_jsonl


class TestHealthz:
    def test_reports_liveness_from_the_metrics_registry(
            self, serve_harness):
        client = serve_harness().client()
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert health["in_flight"] == 0
        # Inline mode (workers=0): liveness is the dispatcher task.
        assert health["workers_alive"] == 1

    def test_registry_gauges_back_the_health_report(self, serve_harness):
        harness = serve_harness()
        harness.client().healthz()
        registry = harness.app._serve_registry()
        assert registry.get("repro_serve_queue_depth").value() == 0
        assert registry.get("repro_serve_workers_alive").value() == 1


class TestPrometheusExposition:
    def test_metrics_endpoint_speaks_prometheus(self, serve_harness,
                                                msvc_blob):
        client = serve_harness().client()
        client.disassemble(msvc_blob)
        status, headers, body = client.request(
            "GET", "/metrics?format=prometheus")
        assert status == 200
        assert headers["content-type"] \
            == "text/plain; version=0.0.4; charset=utf-8"
        assert isinstance(body, str)
        assert "# TYPE repro_serve_requests_total counter" in body
        assert ('repro_serve_requests_total{endpoint="/v1/disassemble"'
                ',status="200"} 1') in body
        assert "repro_serve_workers_alive 1" in body
        assert "repro_serve_cache_total" in body
        # Inline mode runs jobs in-process, so the pipeline's global
        # registry (superset cache, trace counters) rides along.
        assert "repro_superset_cache_total" in body

    def test_json_metrics_shape_is_unchanged(self, serve_harness,
                                             msvc_blob):
        client = serve_harness().client()
        client.disassemble(msvc_blob)
        snap = client.metrics()
        assert isinstance(snap, dict)
        assert set(snap) >= {"requests", "jobs", "batching", "cache",
                             "latency", "worker_phases_s"}


class TestServeTracing:
    def test_trace_export_covers_the_request_lifecycle(
            self, serve_harness, msvc_blob, tmp_path):
        path = tmp_path / "serve.jsonl"
        harness = serve_harness(trace_path=str(path))
        client = harness.client()
        client.disassemble(msvc_blob)
        client.healthz()
        harness.drain()

        summary = validate_jsonl(path)
        spans = [json.loads(line)
                 for line in path.read_text().splitlines()]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)

        # One request span per HTTP round trip, each a root.
        requests = by_name["request"]
        assert len(requests) == 2
        assert all(s["parent_id"] is None for s in requests)
        endpoints = {s["attrs"]["endpoint"] for s in requests}
        assert endpoints == {"/v1/disassemble", "/healthz"}

        # The job lifecycle hangs off the disassemble request span.
        disasm = next(s for s in requests
                      if s["attrs"]["endpoint"] == "/v1/disassemble")
        (job,) = by_name["job"]
        assert job["parent_id"] == disasm["span_id"]
        (wait,) = by_name["queue-wait"]
        assert wait["parent_id"] == disasm["span_id"]
        # A batch may cover jobs from several requests, so the batch
        # span is deliberately a root of the trace.
        (batch,) = by_name["worker-batch"]
        assert batch["attrs"]["jobs"] == 1
        assert batch["parent_id"] is None
        # The pipeline's own phases nest under the job span.
        assert "disassemble" in by_name
        assert "superset" in by_name

        assert summary["traces"] == 1
        assert summary["roots"] == 3            # 2 requests + the batch
        assert summary["dangling_parents"] == 0

    def test_untraced_server_writes_nothing(self, serve_harness,
                                            msvc_blob, tmp_path,
                                            monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        harness = serve_harness()
        assert harness.app.tracer is None
        client = harness.client()
        body = client.disassemble(msvc_blob)
        assert body["result"]
