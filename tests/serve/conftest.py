"""Fixtures for the serving-layer tests.

The end-to-end tests run a real :class:`~repro.serve.ServeApp` on an
ephemeral localhost port inside a background thread (its own asyncio
event loop), driven through the blocking :class:`~repro.serve.client.
ServeClient` -- the same path production traffic takes.  Inline job
execution (``workers=0``) keeps them fast and lets tests monkeypatch
``repro.serve.scheduler.run_batch`` to simulate slow or stuck workers.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve import ServeApp, ServeClient, ServeConfig


class ServerHarness:
    """A ServeApp running on a daemon thread with its own event loop."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.app: ServeApp | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.app = ServeApp(self.config)
        ready = asyncio.Event()

        async def announce_ready() -> None:
            await ready.wait()
            self._ready.set()

        task = asyncio.ensure_future(announce_ready())
        try:
            await self.app.serve_forever(ready=ready)
        finally:
            task.cancel()

    def start(self, timeout: float = 120.0) -> ServerHarness:
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("server thread did not become ready")
        return self

    @property
    def port(self) -> int:
        assert self.app is not None
        return self.app.port

    def client(self, timeout: float = 120.0) -> ServeClient:
        return ServeClient(port=self.port, timeout=timeout)

    def drain(self, timeout: float = 60.0) -> None:
        """Graceful drain (the SIGTERM path minus the signal)."""
        assert self.loop is not None and self.app is not None
        self.loop.call_soon_threadsafe(self.app.initiate_drain)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("server did not drain in time")

    def stop(self, timeout: float = 60.0) -> None:
        """Hard teardown for tests that already asserted what they need."""
        if not self._thread.is_alive():
            return
        assert self.loop is not None and self.app is not None
        app = self.app

        def _close() -> None:
            asyncio.ensure_future(app.aclose())

        self.loop.call_soon_threadsafe(_close)
        self._thread.join(timeout)


@pytest.fixture
def serve_harness(models):
    """Factory: start a server with overridable config; always clean up.

    Depends on the session ``models`` fixture so model training cost is
    paid once, not inside a server thread's first request.
    """
    started: list[ServerHarness] = []

    def factory(**overrides) -> ServerHarness:
        config = ServeConfig(**{"port": 0, "workers": 0,
                                "access_log_enabled": False,
                                **overrides})
        harness = ServerHarness(config).start()
        started.append(harness)
        return harness

    yield factory
    for harness in started:
        harness.stop()


@pytest.fixture(scope="session")
def msvc_blob(msvc_case) -> bytes:
    """The msvc test binary as serialized container bytes."""
    return msvc_case.binary.to_bytes()


@pytest.fixture(scope="session")
def gcc_blob(gcc_case) -> bytes:
    return gcc_case.binary.to_bytes()
