"""ServeClient hardening: retries, backoff, 429, deadlines.

Exercises the client against a *flaky stub server* -- a real TCP
listener scripted to refuse, stall, 429, or garble a configurable
number of requests before behaving -- so the retry loop is tested over
genuine sockets, not mocks.
"""

from __future__ import annotations

import http.server
import json
import socket
import threading
import time

import pytest

from repro.serve.client import (BackpressureError, ServeClient,
                                ServeError, TransportError)


class _StubHandler(http.server.BaseHTTPRequestHandler):
    """Scripted behavior, one entry consumed per request."""

    def _next(self) -> dict:
        script = self.server.script          # type: ignore[attr-defined]
        with self.server.lock:               # type: ignore[attr-defined]
            self.server.hits += 1            # type: ignore[attr-defined]
            return script.pop(0) if script else {"action": "ok"}

    def _respond(self) -> None:
        step = self._next()
        action = step.get("action", "ok")
        if action == "close":
            # Slam the connection: the client sees a reset/EOF.
            self.connection.close()
            return
        if action == "stall":
            time.sleep(step.get("seconds", 5.0))
        if action == "garbage":
            self.wfile.write(b"not http at all\r\n")
            self.connection.close()
            return
        status = step.get("status", 200)
        body = json.dumps(step.get("body", {"ok": True})).encode()
        self.send_response(status)
        for name, value in step.get("headers", {}).items():
            self.send_header(name, value)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _respond
    do_POST = _respond

    def log_message(self, *args) -> None:   # quiet
        pass


@pytest.fixture()
def stub():
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0),
                                             _StubHandler)
    server.script = []
    server.hits = 0
    server.lock = threading.Lock()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _client(server, **kwargs) -> ServeClient:
    kwargs.setdefault("timeout", 5.0)
    kwargs.setdefault("backoff", 0.01)
    return ServeClient(port=server.server_address[1], **kwargs)


def test_retries_through_connection_resets(stub):
    stub.script = [{"action": "close"}, {"action": "close"},
                   {"action": "ok", "body": {"status": "ok"}}]
    client = _client(stub, retries=3)
    assert client.healthz() == {"status": "ok"}
    assert stub.hits == 3


def test_retry_budget_exhausts_to_typed_error(stub):
    stub.script = [{"action": "close"}] * 5
    client = _client(stub, retries=2)
    with pytest.raises(TransportError) as excinfo:
        client.healthz()
    assert excinfo.value.status == 0
    assert "3 attempt(s)" in str(excinfo.value)
    assert isinstance(excinfo.value.cause, Exception)
    assert stub.hits == 3       # 1 initial + 2 retries, bounded


def test_zero_retries_still_raises_typed_not_socket_error():
    # Nothing is listening on this port at all.
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    client = ServeClient(port=port, retries=0, backoff=0.01)
    with pytest.raises(TransportError):
        client.healthz()


def test_transport_error_is_a_serve_error(stub):
    stub.script = [{"action": "close"}]
    client = _client(stub, retries=0)
    with pytest.raises(ServeError):
        client.healthz()


def test_garbled_response_is_retried(stub):
    stub.script = [{"action": "garbage"},
                   {"action": "ok", "body": {"status": "ok"}}]
    client = _client(stub, retries=2)
    assert client.healthz() == {"status": "ok"}
    assert stub.hits == 2


def test_429_honors_retry_after_then_succeeds(stub):
    stub.script = [
        {"status": 429, "headers": {"Retry-After": "0.05"},
         "body": {"error": "queue full"}},
        {"action": "ok", "body": {"status": "ok"}},
    ]
    client = _client(stub, retries=2)
    started = time.monotonic()
    assert client.healthz() == {"status": "ok"}
    assert time.monotonic() - started >= 0.05   # waited at least Retry-After
    assert stub.hits == 2


def test_429_exhausted_raises_backpressure_with_retry_after(stub):
    stub.script = [{"status": 429, "headers": {"Retry-After": "0.01"},
                    "body": {"error": "queue full"}}] * 3
    client = _client(stub, retries=1)
    with pytest.raises(BackpressureError) as excinfo:
        client.healthz()
    assert excinfo.value.retry_after == pytest.approx(0.01)
    assert stub.hits == 2


def test_deadline_cuts_off_a_stalled_server(stub):
    stub.script = [{"action": "stall", "seconds": 30.0}]
    client = _client(stub, retries=5, deadline=0.3)
    started = time.monotonic()
    with pytest.raises(TransportError):
        client.healthz()
    assert time.monotonic() - started < 5.0   # well under the stall


def test_deadline_stops_retry_loop_early(stub):
    stub.script = [{"action": "close"}] * 50
    client = _client(stub, retries=50, backoff=0.2, deadline=0.3)
    with pytest.raises(TransportError):
        client.healthz()
    assert stub.hits < 50       # deadline, not the retry count, stopped it


def test_connect_timeout_is_distinct_from_read_timeout(stub):
    client = _client(stub, timeout=60.0, connect_timeout=0.25)
    assert client.connect_timeout == 0.25
    assert client.timeout == 60.0
    # And defaulting: no connect_timeout means "same as read timeout".
    assert ServeClient(timeout=7.0).connect_timeout == 7.0


def test_short_read_timeout_fails_fast_despite_long_connect(stub):
    # Connect succeeds instantly, then the server stalls the response:
    # the *read* timeout (0.2s) must cut it off, not the 30s connect.
    stub.script = [{"action": "stall", "seconds": 30.0}]
    client = _client(stub, timeout=0.2, connect_timeout=30.0, retries=0)
    started = time.monotonic()
    with pytest.raises(TransportError):
        client.healthz()
    assert time.monotonic() - started < 5.0


def test_non_retryable_status_raises_immediately(stub):
    stub.script = [{"status": 400, "body": {"error": "bad request"}}]
    client = _client(stub, retries=3)
    with pytest.raises(ServeError) as excinfo:
        client.healthz()
    assert excinfo.value.status == 400
    assert stub.hits == 1       # no retry on a client error


def test_rejects_negative_retries():
    with pytest.raises(ValueError):
        ServeClient(retries=-1)
