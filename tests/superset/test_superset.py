"""Tests for superset disassembly."""

from repro.isa import Assembler, decode
from repro.isa.registers import RAX
from repro.superset import Superset


def build(fn) -> Superset:
    a = Assembler()
    fn(a)
    return Superset.build(a.finish())


class TestConstruction:
    def test_superset_contains_truth(self, msvc_case, msvc_superset):
        """Every real instruction start is a valid superset candidate."""
        for start in msvc_case.truth.instruction_starts:
            candidate = msvc_superset.at(start)
            assert candidate is not None
            assert candidate.raw == msvc_case.text[start:start
                                                   + candidate.length]

    def test_invalid_offsets_complement_valid(self, msvc_superset):
        size = len(msvc_superset)
        assert (set(msvc_superset.valid_offsets)
                | set(msvc_superset.invalid_offsets)) == set(range(size))

    def test_out_of_range_at(self):
        superset = Superset.build(b"\x90\xc3")
        assert superset.at(-1) is None
        assert superset.at(2) is None

    def test_empty_text(self):
        superset = Superset.build(b"")
        assert len(superset) == 0
        assert superset.valid_offsets == []


class TestSuccessors:
    def test_fallthrough_successor(self):
        superset = build(lambda a: (a.nop(1), a.ret()))
        assert superset.successors(0) == [1]

    def test_ret_has_no_successors(self):
        superset = build(lambda a: (a.ret(), a.ret()))
        assert superset.successors(0) == []

    def test_cjump_has_two_successors(self):
        a = Assembler()
        a.jcc("e", "out")
        a.nop(1)
        a.bind("out")
        a.ret()
        superset = Superset.build(a.finish())
        assert sorted(superset.successors(0)) == [6, 7]

    def test_call_successors_include_fallthrough_and_target(self):
        a = Assembler()
        a.call("f")
        a.ret()
        a.bind("f")
        a.ret()
        superset = Superset.build(a.finish())
        assert sorted(superset.successors(0)) == [5, 6]

    def test_out_of_section_target_excluded(self):
        superset = Superset.build(b"\xeb\x7f\xc3")   # jmp +0x7f
        assert superset.successors(0) == []


class TestPredecessorsAndTargets:
    def test_direct_predecessors(self):
        a = Assembler()
        a.jmp("x")          # 5 bytes
        a.bind("x")
        a.ret()
        superset = Superset.build(a.finish())
        assert 0 in superset.direct_predecessors[5]

    def test_call_target_counts(self):
        a = Assembler()
        a.call("f")
        a.call("f")
        a.ret()
        a.bind("f")
        a.ret()
        superset = Superset.build(a.finish())
        target = superset.at(0).branch_target
        assert superset.direct_call_targets[target] >= 2

    def test_jump_targets(self):
        a = Assembler()
        a.jcc("ne", "x")
        a.bind("x")
        a.ret()
        superset = Superset.build(a.finish())
        assert superset.direct_jump_targets.get(6, 0) >= 1


class TestChains:
    def test_chain_stops_at_terminator(self):
        superset = build(lambda a: (a.nop(1), a.nop(1), a.ret(), a.nop(1)))
        chain = superset.fallthrough_chain(0, 10)
        assert [i.offset for i in chain] == [0, 1, 2]

    def test_chain_respects_limit(self):
        superset = build(lambda a: a.db(b"\x90" * 20))
        assert len(superset.fallthrough_chain(0, 5)) == 5

    def test_chain_stops_at_invalid(self):
        superset = Superset.build(b"\x90\x06\x90")   # nop, invalid, nop
        chain = superset.fallthrough_chain(0, 10)
        assert len(chain) == 1

    def test_occluded_by(self):
        a = Assembler()
        a.mov_ri(RAX, 1, width=32)    # 5 bytes at offset 0
        superset = Superset.build(a.finish() + b"\x90")
        assert superset.occluded_by(0) == [1, 2, 3, 4]


class TestRepeatedRunFastPath:
    """Long identical-byte runs must decode exactly like the naive path."""

    def naive(self, text: bytes):
        from repro.isa.decoder import try_decode
        return [try_decode(text, o) for o in range(len(text))]

    def assert_equivalent(self, text: bytes):
        assert Superset.build(text).instructions == self.naive(text)

    def test_long_nul_run(self):
        self.assert_equivalent(b"\x90" * 4 + b"\x00" * 100 + b"\xc3")

    def test_long_int3_padding_run(self):
        self.assert_equivalent(b"\xc3" + b"\xcc" * 80 + b"\x90\xc3")

    def test_long_nop_run(self):
        self.assert_equivalent(b"\x90" * 200)

    def test_relative_branch_run_shifts_targets(self):
        # 0xEB decodes as jmp rel8: every offset in the run has a
        # *different* absolute target, which the fast path must shift.
        text = b"\xeb" * 64 + b"\x90" * 64
        superset = Superset.build(text)
        naive = self.naive(text)
        assert superset.instructions == naive
        targets = [ins.branch_target for ins in superset.instructions[:40]]
        assert targets == [o + 2 - 0x15 for o in range(40)]

    def test_run_at_end_of_text(self):
        self.assert_equivalent(b"\xc3" + b"\x00" * 60)

    def test_run_at_start_of_text(self):
        self.assert_equivalent(b"\xcc" * 60 + b"\xc3")

    def test_short_runs_take_slow_path_and_agree(self):
        self.assert_equivalent(b"\x00" * 16 + b"\xcc" * 16 + b"\x90" * 16)
