"""Tests for candidate overlap conflicts."""

from repro.isa import Assembler
from repro.isa.registers import RAX
from repro.superset import (Superset, conflicting_offsets,
                            covering_candidates, no_overlap)


def five_byte_mov() -> Superset:
    a = Assembler()
    a.mov_ri(RAX, 1, width=32)   # b8 01 00 00 00
    a.ret()
    return Superset.build(a.finish())


class TestConflicts:
    def test_interior_offsets_conflict(self):
        superset = five_byte_mov()
        conflicts = conflicting_offsets(superset, 0)
        assert conflicts == {1, 2, 3, 4}

    def test_covering_candidate_conflicts_backward(self):
        superset = five_byte_mov()
        # Offset 2 is occluded by the candidate at 0 (if 2 decodes).
        if superset.is_valid(2):
            assert 0 in conflicting_offsets(superset, 2)

    def test_invalid_offset_has_no_conflicts(self):
        superset = Superset.build(b"\x06\x90")
        assert conflicting_offsets(superset, 0) == set()

    def test_covering_candidates(self):
        superset = five_byte_mov()
        covering = covering_candidates(superset, 3)
        assert 0 in covering


class TestNoOverlap:
    def test_clean_tiling(self):
        superset = five_byte_mov()
        assert no_overlap({0, 5}, superset)

    def test_overlapping_starts_rejected(self):
        superset = five_byte_mov()
        if superset.is_valid(2):
            assert not no_overlap({0, 2}, superset)

    def test_invalid_member_rejected(self):
        superset = Superset.build(b"\x06\x90")
        assert not no_overlap({0}, superset)

    def test_ground_truth_is_overlap_free(self, msvc_case, msvc_superset):
        assert no_overlap(msvc_case.truth.instruction_starts, msvc_superset)
