"""The repeated-byte-run fast path must hold under *both* decoders.

``Superset.build`` replaces decoding deep inside identical-byte runs
with a shift of the neighbouring candidate (the ``_RUN_FAST_WINDOW``
invariant).  That shortcut sits above the decoder seam, so it has to
produce exactly what a per-offset decode would -- whichever backend
(compiled engine or interpretive oracle) is active, and identically
*across* backends.
"""

import pytest

from repro.isa.decoder import try_decode, try_decode_interp
from repro.superset import Superset
from repro.superset import superset as superset_mod
from repro.superset.superset import _RUN_FAST_WINDOW

W = _RUN_FAST_WINDOW

RUN_SECTIONS = [
    pytest.param(b"\x90" * 4 + b"\x00" * (W + 40) + b"\xc3", id="nul-run"),
    pytest.param(b"\xc3" + b"\xcc" * (W + 30) + b"\x90\xc3", id="int3-run"),
    pytest.param(b"\x90" * (3 * W), id="nop-run"),
    # jmp rel8 runs: every in-run candidate has a *different* absolute
    # target, so the shift path must rewrite RelOp targets.
    pytest.param(b"\xeb" * (2 * W) + b"\x90" * (2 * W), id="jmp-rel8-run"),
    # mov eax, imm32 runs: the candidate's immediate bytes are further
    # run bytes, exercising shifts of multi-byte in-run instructions.
    pytest.param(b"\xb8" * (W + 20) + b"\x11\x22\x33\x44", id="imm-run"),
    pytest.param(b"\xc3" + b"\x00" * (2 * W), id="run-at-end"),
    pytest.param(b"\xcc" * (2 * W) + b"\xc3", id="run-at-start"),
    # Boundary lengths: W never takes the fast path, W + 1 barely does.
    pytest.param(b"\x00" * W + b"\xc3", id="run-exactly-window"),
    pytest.param(b"\x00" * (W + 1) + b"\xc3", id="run-window-plus-one"),
    pytest.param(b"\x48" * (W + 10) + b"\x89\xd8\xc3", id="rex-prefix-run"),
    pytest.param(b"\x00" * (W + 5) + b"\x90" * 7 + b"\xff" * (W + 5),
                 id="two-runs"),
]


@pytest.fixture(params=["compiled-default", "interp"])
def backend_decode(request, monkeypatch):
    """Run the test body under each decoder backend.

    The seam is module-global rebinding, so the interp case patches the
    name ``Superset.build`` actually reads (``superset.try_decode``).
    """
    if request.param == "interp":
        monkeypatch.setattr(superset_mod, "try_decode", try_decode_interp)
        return try_decode_interp
    return try_decode


class TestRunFastPathPerBackend:
    @pytest.mark.parametrize("text", RUN_SECTIONS)
    def test_fast_path_equals_naive_decode(self, text, backend_decode):
        naive = [backend_decode(text, o) for o in range(len(text))]
        assert Superset.build(text).instructions == naive

    @pytest.mark.parametrize("text", RUN_SECTIONS)
    def test_backends_agree_on_run_sections(self, text, monkeypatch):
        via_default = Superset.build(text)
        monkeypatch.setattr(superset_mod, "try_decode", try_decode_interp)
        via_interp = Superset.build(text)
        assert via_default.instructions == via_interp.instructions

    def test_shifted_candidates_carry_shifted_raw_and_offsets(
            self, backend_decode):
        text = b"\xeb" * (2 * W)
        superset = Superset.build(text)
        for offset in range(len(text) - 2):
            candidate = superset.at(offset)
            assert candidate.offset == offset
            assert candidate.raw == text[offset:offset + 2]
            assert candidate.branch_target == offset + 2 - 0x15
