"""Tests for the CLI rewrite command."""

import json

import pytest

from repro.binary.container import Binary
from repro.cli import main
from repro.emulator import Emulator


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli_rewrite")
    prefix = directory / "src"
    assert main(["generate", str(prefix), "--functions", "8",
                 "--seed", "3"]) == 0
    return directory


class TestRewriteCommand:
    def test_rewrite_writes_valid_container(self, workspace, capsys):
        code = main(["rewrite", str(workspace / "src.bin"),
                     str(workspace / "out.bin"),
                     "--map", str(workspace / "map.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "instrumented entries" in out

        rewritten = Binary.from_bytes((workspace / "out.bin").read_bytes())
        assert rewritten.text.data
        assert any(s.name == ".counters" for s in rewritten.sections)

        mapping = json.loads((workspace / "map.json").read_text())
        assert mapping    # old -> new hex addresses

    def test_rewritten_behaves_like_original(self, workspace):
        main(["rewrite", str(workspace / "src.bin"),
              str(workspace / "out2.bin")])
        original = Binary.from_bytes((workspace / "src.bin").read_bytes())
        rewritten = Binary.from_bytes(
            (workspace / "out2.bin").read_bytes())
        a = Emulator(original).run(original.entry, max_steps=60_000)
        b = Emulator(rewritten).run(rewritten.entry, max_steps=90_000)
        if a.stop_reason != "steps":
            assert b.stop_reason == a.stop_reason
            assert b.return_value == a.return_value

    def test_no_counters_flag(self, workspace, capsys):
        assert main(["rewrite", str(workspace / "src.bin"),
                     str(workspace / "out3.bin"), "--no-counters"]) == 0
        assert "0 instrumented entries" in capsys.readouterr().out
        rewritten = Binary.from_bytes(
            (workspace / "out3.bin").read_bytes())
        assert not any(s.name == ".counters" for s in rewritten.sections)
