"""Tests for jump/pointer-table resolution by backward dataflow."""

import numpy as np

from repro.binary.container import Section
from repro.binary.image import MemoryImage
from repro.core.config import DEFAULT_CONFIG
from repro.core.correction import CorrectionEngine
from repro.core.evidence import Priority
from repro.core.tables import (backward_chain,
                               resolve_indirect_jump)
from repro.isa import Assembler, Mem, mem, rip
from repro.isa.registers import R10, R11, RAX, RBP, RDI, RSP
from repro.superset import Superset


def traced_engine(text: bytes, image=None, seed: int = 0):
    from repro.core.evidence import Evidence
    superset = Superset.build(text)
    engine = CorrectionEngine(superset, np.zeros(len(text)),
                              DEFAULT_CONFIG, image=image)
    engine.push(Evidence("code", seed, seed, Priority.ANCHOR, 1.0, "test"))
    engine.drain()
    return engine


class TestBackwardChain:
    def test_walks_block_backwards(self):
        a = Assembler()
        a.push_r(RBP)            # 0
        a.mov_rr(RBP, RSP)       # 1
        a.alu_ri("cmp", RDI, 3)  # 4
        a.ret()                  # 8
        text = a.finish()
        engine = traced_engine(text)
        chain = backward_chain(engine.superset, engine.state.is_code_start,
                               8)
        assert [i.offset for i in chain] == [4, 1, 0]

    def test_stops_at_unaccepted_bytes(self):
        a = Assembler()
        a.ret()
        text = b"\x06" + a.finish()
        engine = traced_engine(text, seed=1)
        chain = backward_chain(engine.superset, engine.state.is_code_start,
                               1)
        assert chain == []


class TestAbsoluteJumpTable:
    def build(self, with_cmp=True, entries=4):
        a = Assembler()
        if with_cmp:
            a.alu_ri("cmp", RDI, entries - 1)
            a.jcc("a", "out")
        a.jmp_m(Mem(index=RDI, scale=8, disp_label="table"))
        a.bind("out")
        a.ret()
        a.align(8, b"\xcc")
        a.bind("table")
        for i in range(entries):
            a.dq_label("out")
        return a.finish()

    def test_resolves_with_bound(self):
        text = self.build(with_cmp=True, entries=4)
        engine = traced_engine(text)
        dispatch_offset = next(
            o for o in engine.state.instruction_starts()
            if engine.superset.at(o).mnemonic == "jmp"
            and engine.superset.at(o).branch_target is None)
        dispatch = engine.superset.at(dispatch_offset)
        table = resolve_indirect_jump(engine.superset, engine.image,
                                      engine.state.is_code_start, dispatch)
        assert table is not None
        assert table.entry_size == 8
        assert len(table.targets) == 4
        assert table.in_text
        assert all(engine.superset.at(t).mnemonic == "ret"
                   for t in table.targets)

    def test_engine_marks_resolved_table_as_data(self):
        text = self.build()
        superset = Superset.build(text)
        engine = CorrectionEngine(superset, np.zeros(len(text)),
                                  DEFAULT_CONFIG)
        from repro.core.evidence import Evidence
        engine.push(Evidence("code", 0, 0, Priority.ANCHOR, 1.0, "entry"))
        engine.drain()
        assert engine.resolved_tables
        table = engine.resolved_tables[0]
        assert engine.state.is_data(table.address)


class TestRelativeJumpTable:
    def test_resolves_rip_lea_pattern(self):
        a = Assembler()
        a.alu_ri("cmp", RDI, 2)
        a.jcc("a", "out")
        a.lea(R10, rip("table"))
        a.movsxd_rm(R11, mem(base=R10, index=RDI, scale=4))
        a.alu_rr("add", R11, R10)
        a.jmp_r(R11)
        a.align(4, b"\xcc")
        a.bind("table")
        for _ in range(3):
            a.dd_label_rel("out", "table")
        a.bind("out")
        a.ret()
        text = a.finish()
        engine = traced_engine(text)
        assert engine.resolved_tables
        table = engine.resolved_tables[0]
        assert table.entry_size == 4
        assert len(table.targets) == 3

    def test_resolves_mov_imm_base_out_of_text(self):
        rodata_addr = 0x2000
        a = Assembler()
        a.alu_ri("cmp", RDI, 2)
        a.jcc("a", "out")
        a.mov_ri(R10, rodata_addr, width=64)
        a.movsxd_rm(R11, mem(base=R10, index=RDI, scale=4))
        a.alu_rr("add", R11, R10)
        a.jmp_r(R11)
        a.bind("out")
        a.ret()
        text = a.finish()
        out_offset = len(text) - 1
        entries = b"".join(
            ((out_offset - rodata_addr) & 0xFFFFFFFF).to_bytes(4, "little")
            for _ in range(3))
        image = MemoryImage(sections=[
            Section(".text", 0, text, executable=True),
            Section(".rodata", rodata_addr, entries),
        ])
        engine = traced_engine(text, image=image)
        assert engine.resolved_tables
        table = engine.resolved_tables[0]
        assert not table.in_text
        assert set(table.targets) == {out_offset}


class TestPointerTable:
    def test_resolves_indirect_call_table(self):
        a = Assembler()
        a.alu_ri("cmp", RDI, 1)
        a.jcc("a", "skip")
        a.mov_rm(RAX, Mem(index=RDI, scale=8, disp_label="ptable"))
        a.call_r(RAX)
        a.bind("skip")
        a.ret()
        a.align(8, b"\xcc")
        a.bind("ptable")
        a.dq_label("f0")
        a.dq_label("f1")
        a.bind("f0")
        a.ret()
        a.bind("f1")
        a.ret()
        text = a.finish()
        engine = traced_engine(text)
        pointer_tables = [t for t in engine.resolved_tables
                          if t.kind == "pointer"]
        assert pointer_tables
        table = pointer_tables[0]
        assert len(table.targets) == 2
        # The targets were traced as code.
        for target in table.targets:
            assert engine.state.is_code_start(target)


class TestRobustness:
    def test_unresolvable_jump_reg(self):
        a = Assembler()
        a.jmp_r(RAX)    # no table idiom before it
        text = a.finish()
        engine = traced_engine(text)
        assert not engine.resolved_tables

    def test_bounded_table_with_bad_entry_rejected(self):
        a = Assembler()
        a.alu_ri("cmp", RDI, 7)      # claims 8 entries
        a.jcc("a", "out")
        a.jmp_m(Mem(index=RDI, scale=8, disp_label="table"))
        a.bind("out")
        a.ret()
        a.align(8, b"\xcc")
        a.bind("table")
        a.dq_label("out")
        a.dq_label("out")
        a.dq(0xFFFFFFFFFFFF)         # garbage entry within the bound
        text = a.finish()
        engine = traced_engine(text)
        assert not [t for t in engine.resolved_tables if t.kind == "jump"]

    def test_real_binaries_resolve_tables(self, msvc_case, models):
        from repro.core import Disassembler
        disassembler = Disassembler(models=models)
        rich = disassembler.disassemble_rich(msvc_case)
        # (resolution happens inside the engine; check via accuracy)
        missed = (msvc_case.truth.instruction_starts
                  - rich.result.instruction_starts)
        assert len(missed) / len(msvc_case.truth.instruction_starts) < 0.02
