"""Integration tests for deferred call continuations in the engine."""

import numpy as np

from repro.core.config import DEFAULT_CONFIG
from repro.core.correction import CorrectionEngine
from repro.core.evidence import Evidence, Priority
from repro.isa import Assembler
from repro.isa.registers import RAX, RDI
from repro.superset import Superset


def drained_engine(build, entry=0):
    a = Assembler()
    build(a)
    text = a.finish()
    engine = CorrectionEngine(Superset.build(text), np.zeros(len(text)),
                              DEFAULT_CONFIG)
    engine.push(Evidence("code", entry, entry, Priority.ANCHOR, 1.0,
                         "entry"))
    engine.drain()
    return engine


class TestDeferredContinuations:
    def test_fallthrough_after_returning_call_is_traced(self):
        def body(a):
            a.call("f")
            a.mov_ri(RAX, 1, width=32)   # continuation: real code
            a.ret()
            a.bind("f")
            a.ret()
        engine = drained_engine(body)
        assert engine.state.is_code_start(5)     # the mov after the call
        assert not engine.noreturn_fall_sites

    def test_fallthrough_after_noreturn_call_stays_unknown(self):
        def body(a):
            a.call("panic")
            a.db(b"\x13\x37\xde\xad")    # data after noreturn call
            a.bind("after")
            a.ret()                      # reachable some other way? no.
            a.bind("panic")
            a.ud2()
        engine = drained_engine(body)
        assert 5 in engine.noreturn_fall_sites
        assert not engine.state.is_code_start(5)
        panic = engine.superset.at(0).branch_target
        assert panic in engine.noreturn_entries

    def test_guarded_panic_pattern(self):
        """The realistic shape: jcc over the panic call; the skip label
        is reached via the branch, the blob never is."""
        def body(a):
            a.alu_ri("cmp", RDI, 3)
            a.jcc("a", "skip")
            a.mov_ri(RDI, 9, width=32)
            a.call("panic")
            a.db(b"\xba\xdd\xa7\xa0\x00\x00")
            a.bind("skip")
            a.mov_ri(RAX, 0, width=32)
            a.ret()
            a.bind("panic")
            a.hlt()
        engine = drained_engine(body)
        superset = engine.superset
        skip = next(o for o in engine.state.instruction_starts()
                    if superset.at(o).mnemonic == "mov"
                    and superset.at(o).operands[0].register.family == RAX)
        assert engine.state.is_code_start(skip)
        # The blob bytes are not code.
        call_offset = next(o for o in engine.state.instruction_starts()
                           if superset.at(o).mnemonic == "call")
        blob_start = superset.at(call_offset).end
        engine.complete_gaps()
        assert not engine.state.is_code_start(blob_start)

    def test_retry_resolves_order_dependent_dispatch(self):
        """A dispatch visited before its defining mov still resolves."""
        from repro.isa import Mem
        def body(a):
            # A jump straight to the dispatch (visited first in LIFO
            # order), then the real linear path that defines the guard.
            a.jmp("linear")
            a.bind("dispatch")
            a.jmp_m(Mem(index=RDI, scale=8, disp_label="table"))
            a.bind("linear")
            a.alu_ri("cmp", RDI, 1)
            a.jcc("a", "out")
            a.jmp("dispatch")
            a.bind("out")
            a.ret()
            a.align(8, b"\xcc")
            a.bind("table")
            a.dq_label("out")
            a.dq_label("out")
        engine = drained_engine(body)
        assert [t for t in engine.resolved_tables if t.kind == "jump"]


class TestNoreturnFallSitesInGaps:
    def test_gap_at_noreturn_fall_site_not_scored(self):
        def body(a):
            a.call("panic")
            a.db(b"\x90\x90\x90\xc3")   # decodes perfectly -- still data
            a.bind("panic")
            a.ud2()
        engine = drained_engine(body)
        engine.complete_gaps()
        assert engine.state.is_data(5)
        assert not engine.state.is_code_start(5)
