"""Tests for classification state and priority semantics."""

import pytest

from repro.core.evidence import (ClassificationState,
                                 Evidence, Priority)


class TestEvidence:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            Evidence("maybe", 0, 0, Priority.SOFT, 1.0, "x")
        with pytest.raises(ValueError, match="inverted"):
            Evidence("data", 10, 5, Priority.SOFT, 1.0, "x")


class TestStateBasics:
    def test_initially_unknown(self):
        state = ClassificationState(8)
        assert all(state.is_unknown(i) for i in range(8))
        assert state.unknown_gaps() == [(0, 8)]

    def test_mark_instruction(self):
        state = ClassificationState(8)
        state.mark_instruction(2, 3, Priority.ANCHOR)
        assert state.is_code_start(2)
        assert state.is_code(3) and state.is_code(4)
        assert not state.is_code_start(3)
        assert state.instruction_starts() == {2}

    def test_mark_data(self):
        state = ClassificationState(8)
        state.mark_data(4, 8, Priority.STRUCTURAL)
        assert state.is_data(5)
        assert state.data_regions() == [(4, 8)]

    def test_gaps_after_marks(self):
        state = ClassificationState(10)
        state.mark_instruction(0, 2, Priority.ANCHOR)
        state.mark_data(6, 8, Priority.SOFT)
        assert state.unknown_gaps() == [(2, 6), (8, 10)]

    def test_instruction_clipped_at_end(self):
        state = ClassificationState(4)
        state.mark_instruction(2, 5, Priority.SOFT)
        assert state.is_code(3)


class TestPriorityConflicts:
    def test_weaker_data_cannot_overwrite_code(self):
        state = ClassificationState(8)
        state.mark_instruction(0, 4, Priority.ANCHOR)
        assert not state.can_mark_data(0, 4, Priority.SOFT)
        assert not state.can_mark_data(2, 6, Priority.STRUCTURAL)

    def test_stronger_data_can_overwrite_code(self):
        state = ClassificationState(8)
        state.mark_instruction(0, 4, Priority.SOFT)
        assert state.can_mark_data(0, 4, Priority.STRUCTURAL)

    def test_weaker_instruction_cannot_overwrite_data(self):
        state = ClassificationState(8)
        state.mark_data(0, 8, Priority.STRUCTURAL)
        assert not state.can_mark_instruction(0, 4, Priority.SOFT)

    def test_stronger_instruction_overrides_data(self):
        state = ClassificationState(8)
        state.mark_data(0, 8, Priority.SOFT)
        assert state.can_mark_instruction(0, 4, Priority.ANCHOR)
        state.mark_instruction(0, 4, Priority.ANCHOR)
        assert state.is_code_start(0)

    def test_conflicting_alignment_rejected_at_equal_priority(self):
        state = ClassificationState(8)
        state.mark_instruction(0, 4, Priority.ANCHOR)
        # A start inside [0,4) would overlap; interior at equal priority.
        assert not state.can_mark_instruction(2, 2, Priority.ANCHOR)

    def test_remarking_same_start_is_allowed(self):
        state = ClassificationState(8)
        state.mark_instruction(0, 4, Priority.SOFT)
        assert state.can_mark_instruction(0, 4, Priority.SOFT)

    def test_equal_priority_data_over_unknown_ok(self):
        state = ClassificationState(8)
        assert state.can_mark_data(0, 8, Priority.SOFT)


class TestErase:
    def test_erase_restores_unknown(self):
        state = ClassificationState(8)
        state.mark_instruction(0, 4, Priority.ANCHOR)
        state.erase({0, 1, 2, 3})
        assert all(state.is_unknown(i) for i in range(4))
        assert state.priorities[0] == 0
