"""Tests for function-boundary identification."""



class TestFunctionIdentification:
    def test_entry_point_is_a_function(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        assert 0 in result.function_entries

    def test_precision_and_recall_floors(self, disassembler, all_cases):
        for case in all_cases:
            result = disassembler.disassemble(case)
            truth = case.truth.function_entries
            predicted = result.function_entries
            precision = len(predicted & truth) / max(len(predicted), 1)
            recall = len(predicted & truth) / len(truth)
            assert precision > 0.9, case.name
            assert recall > 0.75, case.name

    def test_entries_are_accepted_instructions(self, disassembler,
                                               msvc_case):
        result = disassembler.disassemble(msvc_case)
        assert result.function_entries <= result.instruction_starts

    def test_spans_are_ordered_and_disjoint(self, disassembler, msvc_case):
        rich = disassembler.disassemble_rich(msvc_case)
        # Recompute spans to inspect extents directly.
        entries = sorted(rich.result.function_entries)
        for first, second in zip(entries, entries[1:]):
            assert first < second
