"""Integration tests for the public Disassembler API."""

import pytest

from repro.core import (ABLATION_CONFIGS, Disassembler, DisassemblerConfig)
from repro.eval.metrics import evaluate


class TestApiSurface:
    def test_accepts_test_case(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        assert result.tool == "repro"
        assert result.instructions

    def test_accepts_binary(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case.binary)
        assert result.instructions

    def test_accepts_raw_bytes(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case.text)
        assert result.instructions

    def test_rejects_unknown_type(self, disassembler):
        with pytest.raises(TypeError):
            disassembler.disassemble(12345)

    def test_rich_output(self, disassembler, msvc_case):
        rich = disassembler.disassemble_rich(msvc_case)
        assert rich.result.instructions
        assert rich.scores.shape == (len(msvc_case.text),)
        assert rich.log
        assert len(rich.superset) == len(msvc_case.text)

    def test_explicit_entry_override(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case, entry=0)
        assert result.instructions

    def test_summary_string(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        assert "instructions" in result.summary()


class TestOutputInvariants:
    def test_instructions_do_not_overlap(self, disassembler, all_cases):
        for case in all_cases:
            result = disassembler.disassemble(case)
            covered_until = -1
            for start in sorted(result.instructions):
                assert start >= covered_until, case.name
                covered_until = start + result.instructions[start]

    def test_data_and_code_are_disjoint(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        code = result.code_byte_offsets()
        data = result.data_byte_offsets()
        assert not code & data

    def test_every_byte_classified(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        covered = result.code_byte_offsets() | result.data_byte_offsets()
        assert covered == set(range(len(msvc_case.text)))

    def test_lengths_match_decodings(self, disassembler, msvc_case):
        from repro.isa import decode
        result = disassembler.disassemble(msvc_case)
        for start, length in list(result.instructions.items())[:500]:
            assert decode(msvc_case.text, start).length == length


class TestAccuracy:
    def test_high_accuracy_on_every_style(self, disassembler, all_cases):
        for case in all_cases:
            evaluation = evaluate(disassembler.disassemble(case),
                                  case.truth)
            assert evaluation.instructions.f1 > 0.97, case.name
            assert evaluation.instructions.recall > 0.98, case.name

    def test_perfect_on_clean_binaries(self, disassembler, gcc_case):
        evaluation = evaluate(disassembler.disassemble(gcc_case),
                              gcc_case.truth)
        assert evaluation.bytes.total_errors <= 25

    def test_jump_tables_not_decoded_as_code(self, disassembler,
                                             msvc_case):
        result = disassembler.disassemble(msvc_case)
        code = result.code_byte_offsets()
        table_bytes = [o for s, e in msvc_case.truth.jump_tables
                       for o in range(s, e)]
        wrong = sum(1 for o in table_bytes if o in code)
        assert wrong / len(table_bytes) < 0.05


class TestConfigurations:
    def test_ablations_all_run(self, models, msvc_case):
        for name, config in ABLATION_CONFIGS.items():
            disassembler = Disassembler(models=models, config=config)
            result = disassembler.disassemble(msvc_case)
            assert result.instructions, name

    def test_ablation_ordering(self, models, all_cases):
        """Removing components never helps much, and removing the
        structural table resolution hurts a lot."""
        def total_errors(config):
            disassembler = Disassembler(models=models, config=config)
            return sum(
                evaluate(disassembler.disassemble(case), case.truth)
                .bytes.total_errors
                for case in all_cases)

        errors = {name: total_errors(config)
                  for name, config in ABLATION_CONFIGS.items()}
        full = errors["full"]
        for name, count in errors.items():
            # Small corpora are noisy; allow slack but no large win.
            assert full <= count + 40, (name, errors)
        assert errors["no-table-resolution"] > full, errors
        assert (errors["no-priority+no-tables"]
                >= errors["no-table-resolution"]), errors

    def test_degenerate_config_still_works(self, models, msvc_case):
        config = DisassemblerConfig(use_statistics=False,
                                    use_behavior=False)
        disassembler = Disassembler(models=models, config=config)
        result = disassembler.disassemble(msvc_case)
        assert result.instructions

    def test_threshold_trades_precision_for_recall(self, models,
                                                   msvc_case):
        strict = Disassembler(models=models, config=DisassemblerConfig(
            code_threshold=3.0))
        lenient = Disassembler(models=models, config=DisassemblerConfig(
            code_threshold=-3.0))
        strict_eval = evaluate(strict.disassemble(msvc_case),
                               msvc_case.truth)
        lenient_eval = evaluate(lenient.disassemble(msvc_case),
                                msvc_case.truth)
        assert (strict_eval.instructions.recall
                <= lenient_eval.instructions.recall + 1e-9)
