"""Tests for the prioritized error-correction engine."""

import numpy as np

from repro.core.config import DEFAULT_CONFIG
from repro.core.correction import CorrectionEngine
from repro.core.evidence import Evidence, Priority
from repro.isa import Assembler
from repro.isa.registers import RAX, RBP, RSP
from repro.superset import Superset


def engine_for(text: bytes, scores=None) -> CorrectionEngine:
    superset = Superset.build(text)
    if scores is None:
        scores = np.zeros(len(text))
    return CorrectionEngine(superset, scores, DEFAULT_CONFIG)


def assemble(fn) -> bytes:
    a = Assembler()
    fn(a)
    return a.finish()


class TestTracing:
    def test_trace_covers_straight_line(self):
        text = assemble(lambda a: (a.push_r(RBP), a.mov_rr(RBP, RSP),
                                   a.ret()))
        engine = engine_for(text)
        outcome = engine.trace(0, Priority.ANCHOR, "test")
        assert not outcome.aborted
        assert outcome.accepted == {0, 1, 4}
        assert engine.state.is_code_start(0)

    def test_trace_follows_jumps(self):
        def body(a):
            a.jmp("x")
            a.db(b"\x06\x06\x06")   # junk the trace must skip
            a.bind("x")
            a.ret()
        text = assemble(body)
        engine = engine_for(text)
        outcome = engine.trace(0, Priority.ANCHOR, "test")
        assert 8 in outcome.accepted
        assert engine.state.is_unknown(5)

    def test_trace_collects_call_targets(self):
        def body(a):
            a.call("f")
            a.ret()
            a.bind("f")
            a.ret()
        text = assemble(body)
        engine = engine_for(text)
        outcome = engine.trace(0, Priority.ANCHOR, "test")
        assert outcome.call_targets == {6}

    def test_trace_aborts_on_early_invalid(self):
        text = b"\x90\x90\x06" + b"\x90" * 8
        engine = engine_for(text)
        outcome = engine.trace(0, Priority.SOFT, "test")
        assert outcome.aborted
        # Rollback: nothing stays marked.
        assert engine.state.is_unknown(0)
        assert engine.state.is_unknown(1)

    def test_trace_aborts_against_stronger_data(self):
        text = assemble(lambda a: (a.nop(2), a.ret()))
        engine = engine_for(text)
        engine.state.mark_data(1, 3, Priority.STRUCTURAL)
        outcome = engine.trace(0, Priority.SOFT, "test")
        assert outcome.aborted
        assert engine.state.is_unknown(0)

    def test_strong_trace_overrides_weak_data(self):
        text = assemble(lambda a: (a.nop(2), a.ret()))
        engine = engine_for(text)
        engine.state.mark_data(0, 3, Priority.SOFT)
        outcome = engine.trace(0, Priority.ANCHOR, "test")
        assert not outcome.aborted
        assert engine.state.is_code_start(0)

    def test_trace_joins_existing_code(self):
        text = assemble(lambda a: (a.nop(1), a.nop(1), a.ret()))
        engine = engine_for(text)
        engine.trace(1, Priority.ANCHOR, "first")
        outcome = engine.trace(0, Priority.ANCHOR, "second")
        assert not outcome.aborted
        assert engine.state.is_code_start(0)

    def test_rip_references_collected(self):
        def body(a):
            from repro.isa import rip
            a.lea(RAX, rip("blob"))
            a.ret()
            a.bind("blob")
            a.db(b"\x01\x02\x03")
        text = assemble(body)
        engine = engine_for(text)
        outcome = engine.trace(0, Priority.ANCHOR, "test")
        assert 8 in outcome.rip_references


class TestEvidenceQueue:
    def test_priority_order(self):
        text = assemble(lambda a: (a.ret(), a.ret()))
        engine = engine_for(text)
        order = []
        original = engine._apply

        def spy(evidence):
            order.append(evidence.source)
            original(evidence)

        engine._apply = spy
        engine.push(Evidence("code", 0, 0, Priority.SOFT, 1.0, "soft"))
        engine.push(Evidence("code", 1, 1, Priority.ANCHOR, 1.0, "anchor"))
        engine.drain()
        assert order == ["anchor", "soft"]

    def test_weight_breaks_ties(self):
        text = assemble(lambda a: (a.ret(), a.ret()))
        engine = engine_for(text)
        order = []
        original = engine._apply

        def spy(evidence):
            order.append(evidence.weight)
            original(evidence)

        engine._apply = spy
        engine.push(Evidence("code", 0, 0, Priority.SOFT, 1.0, "low"))
        engine.push(Evidence("code", 1, 1, Priority.SOFT, 9.0, "high"))
        engine.drain()
        assert order == [9.0, 1.0]

    def test_data_evidence_rejected_against_stronger_code(self):
        text = assemble(lambda a: (a.ret(), a.ret()))
        engine = engine_for(text)
        engine.push(Evidence("code", 0, 0, Priority.ANCHOR, 1.0, "a"))
        engine.drain()
        engine.push(Evidence("data", 0, 1, Priority.SOFT, 1.0, "d"))
        engine.drain()
        assert engine.state.is_code_start(0)


class TestGapCompletion:
    def test_gaps_become_data_when_no_candidate(self):
        # Invalid bytes everywhere: nothing to accept.
        text = b"\x06" * 16
        engine = engine_for(text, scores=np.full(16, -5.0))
        engine.complete_gaps()
        assert not engine.state.unknown_gaps()
        assert engine.state.data_regions() == [(0, 16)]

    def test_good_gap_code_accepted(self, models):
        def body(a):
            a.push_r(RBP)
            a.mov_rr(RBP, RSP)
            a.mov_ri(RAX, 7, width=32)
            a.pop_r(RBP)
            a.ret()
        text = assemble(body)
        from repro.stats.scoring import StatisticalScorer
        superset = Superset.build(text)
        scores = StatisticalScorer(models.code, models.data
                                   ).score_all(superset)
        engine = CorrectionEngine(superset, scores, DEFAULT_CONFIG)
        engine.complete_gaps()
        assert engine.state.is_code_start(0)
        assert not engine.state.unknown_gaps()

    def test_clean_tile_helper(self):
        text = assemble(lambda a: (a.nop(1), a.nop(1), a.ret()))
        engine = engine_for(text)
        assert engine._clean_tile(0, 3) == [(0, 1), (1, 1), (2, 1)]
        assert engine._clean_tile(0, 2) == [(0, 1), (1, 1)]
        assert engine._clean_tile(1, 3) == [(1, 1), (2, 1)]

    def test_clean_tile_rejects_overhang(self):
        text = assemble(lambda a: (a.mov_ri(RAX, 7, width=32), a.ret()))
        assert engine_for(text)._clean_tile(0, 3) is None

    def test_realign_residue(self):
        # Confirmed code at 3; bytes 0-2 decode cleanly into it.
        text = assemble(lambda a: (a.nop(3), a.ret()))
        engine = engine_for(text)
        engine.trace(3, Priority.ANCHOR, "anchor")
        engine.state.mark_data(0, 3, Priority.SOFT)
        engine.realign_residues()
        assert engine.state.is_code_start(0)

    def test_realign_skips_structural_data(self):
        text = assemble(lambda a: (a.nop(3), a.ret()))
        engine = engine_for(text)
        engine.trace(3, Priority.ANCHOR, "anchor")
        engine.state.mark_data(0, 3, Priority.STRUCTURAL)
        engine.realign_residues()
        assert engine.state.is_data(0)


class TestChainGate:
    def test_terminated_chain_passes(self):
        text = assemble(lambda a: (a.nop(1), a.ret()))
        engine = engine_for(text)
        assert engine._chain_terminates_cleanly(0)

    def test_chain_into_trap_fails(self):
        text = assemble(lambda a: (a.nop(1), a.int3(), a.ret()))
        engine = engine_for(text)
        assert not engine._chain_terminates_cleanly(0)

    def test_chain_into_invalid_fails(self):
        engine = engine_for(b"\x90\x06\x90")
        assert not engine._chain_terminates_cleanly(0)

    def test_chain_joining_code_start_passes(self):
        text = assemble(lambda a: (a.nop(1), a.nop(1), a.ret()))
        engine = engine_for(text)
        engine.trace(1, Priority.ANCHOR, "a")
        assert engine._chain_terminates_cleanly(0)

    def test_chain_joining_mid_instruction_fails(self):
        text = assemble(lambda a: (a.nop(1), a.mov_ri(RAX, 1, width=32),
                                   a.ret()))
        engine = engine_for(text)
        engine.trace(0, Priority.ANCHOR, "a")
        # Offset 2 is inside the mov; a chain reaching it mid-body fails.
        if engine.superset.is_valid(2):
            assert not engine._chain_terminates_cleanly(2)


class TestSoftTraceStrictness:
    """Soft (gap-score) seeds are refuted by *any* contradiction.

    Regression guard for the seed-49 latent bug: a statistical gap
    candidate inside a random-byte literal pool decoded into a long
    chain that only derailed past STRICT_DEPTH, so the derailment was
    pruned instead of refuting the trace, and 33 data bytes shipped as
    code ending in a dangling fall-through.
    """

    def _long_chain_into_invalid(self) -> bytes:
        # 12 single-byte instructions, then an undecodable byte: the
        # contradiction sits deeper than STRICT_DEPTH.
        return b"\x90" * 12 + b"\x06" + b"\x90\xc3"

    def test_soft_trace_aborts_on_deep_contradiction(self):
        text = self._long_chain_into_invalid()
        engine = engine_for(text)
        outcome = engine.trace(0, Priority.SOFT, "gap-score")
        assert outcome.aborted
        assert engine.state.is_unknown(0)

    def test_anchor_trace_keeps_depth_window(self):
        text = self._long_chain_into_invalid()
        engine = engine_for(text)
        outcome = engine.trace(0, Priority.ANCHOR, "entry-point")
        assert not outcome.aborted
        assert engine.state.is_code_start(0)


class TestRealignPaddingGuard:
    def test_pure_padding_residue_stays_data(self):
        # int3 padding directly in front of confirmed code: int3 tiles
        # cleanly (TRAP falls through for tiling purposes), but padding
        # before a function entry is data by convention.
        text = assemble(lambda a: (a.int3(), a.int3(), a.int3(),
                                   a.int3(), a.ret()))
        engine = engine_for(text)
        engine.trace(4, Priority.ANCHOR, "anchor")
        engine.state.mark_data(0, 4, Priority.SOFT)
        engine.realign_residues()
        assert engine.state.is_data(0)
        assert engine.state.is_data(3)

    def test_mixed_residue_still_realigns(self):
        text = assemble(lambda a: (a.nop(3), a.ret()))
        engine = engine_for(text)
        engine.trace(3, Priority.ANCHOR, "anchor")
        engine.state.mark_data(0, 3, Priority.SOFT)
        engine.realign_residues()
        assert engine.state.is_code_start(0)


class TestSeed49Regression:
    def test_msvc_seed49_has_no_false_code_bytes(self):
        """The ROADMAP latent bug: msvc-like/6 functions/seed 49."""
        from repro.eval.metrics import evaluate
        from repro.synth import BinarySpec, MSVC_LIKE, generate_binary

        case = generate_binary(BinarySpec(name="seed49", style=MSVC_LIKE,
                                          function_count=6, seed=49))
        from repro.core import Disassembler
        evaluation = evaluate(Disassembler().disassemble(case), case.truth)
        assert evaluation.bytes.false_code == 0
        assert evaluation.bytes.total_errors == 0
        assert evaluation.instructions.f1 == 1.0
