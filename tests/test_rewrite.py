"""Tests for the static binary rewriter.

The strongest assertions are behavioral: original and rewritten
binaries must execute identically (same stop reason, same return value,
same non-stub instruction count), and counters must record exactly the
calls the emulator makes.
"""

import pytest

from repro.emulator import Emulator
from repro.rewrite import COUNTERS_BASE, rewrite_binary
from repro.synth import BinarySpec, generate_binary
from repro.synth.styles import STYLES


@pytest.fixture(scope="module")
def rewritten_msvc(disassembler, msvc_case):
    rich = disassembler.disassemble_rich(msvc_case)
    return rich, rewrite_binary(rich, msvc_case.binary)


class TestStructure:
    def test_rewritten_binary_has_counters_section(self, rewritten_msvc):
        _, rewritten = rewritten_msvc
        section = rewritten.binary.section(".counters")
        assert section.addr == COUNTERS_BASE
        assert section.size == 8 * len(rewritten.counters)

    def test_all_instructions_mapped(self, rewritten_msvc):
        rich, rewritten = rewritten_msvc
        for start in rich.result.instruction_starts:
            assert start in rewritten.address_map

    def test_mapping_is_monotonic_within_appendix(self, rewritten_msvc,
                                                  msvc_case):
        # Pinned-data layout: moved code keeps its order inside the
        # appendix, and anything mapped below the original image size
        # is a pinned (verbatim) piece that did not move at all.
        _, rewritten = rewritten_msvc
        boundary = len(msvc_case.text)
        items = sorted(rewritten.address_map.items())
        moved = [new for _, new in items if new >= boundary]
        assert moved == sorted(moved)
        for old, new in items:
            if new < boundary:
                assert new == old

    def test_counters_per_function_entry(self, rewritten_msvc):
        rich, rewritten = rewritten_msvc
        assert (set(rewritten.counters)
                == rich.result.function_entries)

    def test_entry_points_at_counter_stub(self, rewritten_msvc):
        _, rewritten = rewritten_msvc
        stub = rewritten.text[rewritten.binary.entry:
                              rewritten.binary.entry + 3]
        assert stub == b"\x48\xff\x05"

    def test_uninstrumented_rewrite_pins_data_in_place(
            self, disassembler, msvc_case):
        rich = disassembler.disassemble_rich(msvc_case)
        rewritten = rewrite_binary(rich, msvc_case.binary,
                                   instrument_entries=False)
        assert not rewritten.counters
        # Pinned-data layout: the section is the original image (with
        # code holes) plus a code appendix -- bigger, but bounded.
        assert len(msvc_case.text) < len(rewritten.text) \
            <= 2 * len(msvc_case.text) + 16
        # Every non-table data byte stays at its original offset
        # (jump/pointer table entries are retargeted, so skip those).
        tables = [(t.start, t.end) for t in rich.tables]
        tables += [(t.address, t.end) for t in rich.resolved_tables
                   if t.in_text]
        checked = 0
        for start, end in rich.result.data_regions:
            if any(s < end and start < e for s, e in tables):
                continue
            assert rewritten.text[start:end] \
                == msvc_case.text[start:end], hex(start)
            checked += 1
        assert checked >= 5


class TestBehavioralEquivalence:
    @pytest.mark.parametrize("style_name", sorted(STYLES))
    def test_same_behavior_from_entry(self, disassembler, style_name):
        case = generate_binary(BinarySpec(name="rw",
                                          style=STYLES[style_name],
                                          function_count=15, seed=21))
        rich = disassembler.disassemble_rich(case)
        rewritten = rewrite_binary(rich, case.binary)

        original = Emulator(case).run(0, max_steps=150_000)
        copy = Emulator(rewritten.binary).run(rewritten.binary.entry,
                                              max_steps=200_000)
        if original.stop_reason == "steps":
            # Long-running program: both runs must still be going, on
            # the same instruction (modulo relocation).
            assert copy.steps >= original.steps
            return
        assert copy.stop_reason == original.stop_reason
        assert copy.return_value == original.return_value
        # Extra steps are exactly the executed counter stubs.
        counter_offsets = {rewritten.address_map[e]
                           for e in rewritten.counters
                           if e in rewritten.address_map}
        stub_steps = sum(1 for o in copy.executed if o in counter_offsets)
        assert copy.steps - stub_steps == original.steps

    def test_counters_match_call_counts(self, disassembler, msvc_case):
        rich = disassembler.disassemble_rich(msvc_case)
        rewritten = rewrite_binary(rich, msvc_case.binary)
        emulator = Emulator(rewritten.binary)
        result = emulator.run(rewritten.binary.entry, max_steps=200_000)

        new_entry_of = {old: rewritten.address_map[old]
                        for old in rewritten.counters}
        for old_entry, counter_addr in rewritten.counters.items():
            count = emulator.memory.read(counter_addr, 8)
            stub_offset = new_entry_of[old_entry]
            executions = sum(1 for o in result.executed
                             if o == stub_offset)
            assert count == executions, hex(old_entry)

    def test_equivalence_across_all_entries(self, disassembler,
                                            clang_case):
        rich = disassembler.disassemble_rich(clang_case)
        rewritten = rewrite_binary(rich, clang_case.binary)
        checked = 0
        for entry in sorted(clang_case.truth.function_entries)[:8]:
            if entry not in rewritten.address_map:
                continue
            original = Emulator(clang_case).run(entry, max_steps=60_000)
            copy = Emulator(rewritten.binary).run(
                rewritten.address_map[entry], max_steps=90_000)
            assert copy.stop_reason == original.stop_reason, hex(entry)
            if original.stop_reason in ("exit", "halt"):
                assert copy.return_value == original.return_value, \
                    hex(entry)
            checked += 1
        assert checked >= 5


class TestLeakedAddresses:
    def test_leaked_data_address_preserved(self, disassembler):
        """Regression (msvc-like seed 49): the program returns a
        *pointer* to an in-text string (``lea rax, [rip+...]`` at 0x66
        targeting 0x46c), so relocating data changes the observable
        return value (1155 instead of 1132) even though every reference
        is correctly retargeted.  The pinned-data layout keeps data at
        its original offsets, preserving leaked addresses numerically.
        """
        case = generate_binary(BinarySpec(name="eq",
                                          style=STYLES["msvc-like"],
                                          function_count=8, seed=49))
        rich = disassembler.disassemble_rich(case)
        rewritten = rewrite_binary(rich, case.binary)
        original = Emulator(case).run(0, max_steps=30_000)
        copy = Emulator(rewritten.binary).run(rewritten.binary.entry,
                                              max_steps=45_000)
        assert original.stop_reason == "exit"
        assert original.return_value == 1132
        assert copy.stop_reason == "exit"
        assert copy.return_value == original.return_value

    def test_speculative_code_is_emitted_verbatim(self, disassembler):
        """The same binary misreads the string ``"warning"`` at 0x1021
        as short jcc instructions (SOFT-priority realign region); branch
        re-encoding would corrupt it.  Pinned speculative regions keep
        their exact bytes and offsets.
        """
        case = generate_binary(BinarySpec(name="eq",
                                          style=STYLES["msvc-like"],
                                          function_count=8, seed=49))
        rich = disassembler.disassemble_rich(case)
        rewritten = rewrite_binary(rich, case.binary)
        start = case.text.find(b"warning\x00")
        assert start != -1
        assert rewritten.text[start:start + 8] == b"warning\x00"


class TestSelfHosting:
    def test_rewritten_binary_disassembles_accurately(self, disassembler,
                                                      msvc_case):
        """Rewriting then disassembling again must find all the moved
        instructions (the rewritten binary is itself a complex binary)."""
        rich = disassembler.disassemble_rich(msvc_case)
        rewritten = rewrite_binary(rich, msvc_case.binary)
        second = disassembler.disassemble(rewritten.binary)
        moved_starts = set(rewritten.address_map.values())
        recovered = len(moved_starts & second.instruction_starts)
        assert recovered / len(moved_starts) > 0.97
