"""Tests for the static binary rewriter.

The strongest assertions are behavioral: original and rewritten
binaries must execute identically (same stop reason, same return value,
same non-stub instruction count), and counters must record exactly the
calls the emulator makes.
"""

import pytest

from repro.emulator import Emulator
from repro.rewrite import COUNTERS_BASE, rewrite_binary
from repro.synth import BinarySpec, generate_binary
from repro.synth.styles import STYLES


@pytest.fixture(scope="module")
def rewritten_msvc(disassembler, msvc_case):
    rich = disassembler.disassemble_rich(msvc_case)
    return rich, rewrite_binary(rich, msvc_case.binary)


class TestStructure:
    def test_rewritten_binary_has_counters_section(self, rewritten_msvc):
        _, rewritten = rewritten_msvc
        section = rewritten.binary.section(".counters")
        assert section.addr == COUNTERS_BASE
        assert section.size == 8 * len(rewritten.counters)

    def test_all_instructions_mapped(self, rewritten_msvc):
        rich, rewritten = rewritten_msvc
        for start in rich.result.instruction_starts:
            assert start in rewritten.address_map

    def test_mapping_is_monotonic(self, rewritten_msvc):
        _, rewritten = rewritten_msvc
        items = sorted(rewritten.address_map.items())
        new_offsets = [new for _, new in items]
        assert new_offsets == sorted(new_offsets)

    def test_counters_per_function_entry(self, rewritten_msvc):
        rich, rewritten = rewritten_msvc
        assert (set(rewritten.counters)
                == rich.result.function_entries)

    def test_entry_points_at_counter_stub(self, rewritten_msvc):
        _, rewritten = rewritten_msvc
        stub = rewritten.text[rewritten.binary.entry:
                              rewritten.binary.entry + 3]
        assert stub == b"\x48\xff\x05"

    def test_uninstrumented_rewrite_preserves_size_shape(
            self, disassembler, msvc_case):
        rich = disassembler.disassemble_rich(msvc_case)
        rewritten = rewrite_binary(rich, msvc_case.binary,
                                   instrument_entries=False)
        assert not rewritten.counters
        # Only branch re-encoding changes sizes: within a few percent.
        assert abs(len(rewritten.text) - len(msvc_case.text)) \
            < len(msvc_case.text) * 0.05


class TestBehavioralEquivalence:
    @pytest.mark.parametrize("style_name", sorted(STYLES))
    def test_same_behavior_from_entry(self, disassembler, style_name):
        case = generate_binary(BinarySpec(name="rw",
                                          style=STYLES[style_name],
                                          function_count=15, seed=21))
        rich = disassembler.disassemble_rich(case)
        rewritten = rewrite_binary(rich, case.binary)

        original = Emulator(case).run(0, max_steps=150_000)
        copy = Emulator(rewritten.binary).run(rewritten.binary.entry,
                                              max_steps=200_000)
        if original.stop_reason == "steps":
            # Long-running program: both runs must still be going, on
            # the same instruction (modulo relocation).
            assert copy.steps >= original.steps
            return
        assert copy.stop_reason == original.stop_reason
        assert copy.return_value == original.return_value
        # Extra steps are exactly the executed counter stubs.
        counter_offsets = {rewritten.address_map[e]
                           for e in rewritten.counters
                           if e in rewritten.address_map}
        stub_steps = sum(1 for o in copy.executed if o in counter_offsets)
        assert copy.steps - stub_steps == original.steps

    def test_counters_match_call_counts(self, disassembler, msvc_case):
        rich = disassembler.disassemble_rich(msvc_case)
        rewritten = rewrite_binary(rich, msvc_case.binary)
        emulator = Emulator(rewritten.binary)
        result = emulator.run(rewritten.binary.entry, max_steps=200_000)

        new_entry_of = {old: rewritten.address_map[old]
                        for old in rewritten.counters}
        for old_entry, counter_addr in rewritten.counters.items():
            count = emulator.memory.read(counter_addr, 8)
            stub_offset = new_entry_of[old_entry]
            executions = sum(1 for o in result.executed
                             if o == stub_offset)
            assert count == executions, hex(old_entry)

    def test_equivalence_across_all_entries(self, disassembler,
                                            clang_case):
        rich = disassembler.disassemble_rich(clang_case)
        rewritten = rewrite_binary(rich, clang_case.binary)
        checked = 0
        for entry in sorted(clang_case.truth.function_entries)[:8]:
            if entry not in rewritten.address_map:
                continue
            original = Emulator(clang_case).run(entry, max_steps=60_000)
            copy = Emulator(rewritten.binary).run(
                rewritten.address_map[entry], max_steps=90_000)
            assert copy.stop_reason == original.stop_reason, hex(entry)
            if original.stop_reason in ("exit", "halt"):
                assert copy.return_value == original.return_value, \
                    hex(entry)
            checked += 1
        assert checked >= 5


class TestSelfHosting:
    def test_rewritten_binary_disassembles_accurately(self, disassembler,
                                                      msvc_case):
        """Rewriting then disassembling again must find all the moved
        instructions (the rewritten binary is itself a complex binary)."""
        rich = disassembler.disassemble_rich(msvc_case)
        rewritten = rewrite_binary(rich, msvc_case.binary)
        second = disassembler.disassemble(rewritten.binary)
        moved_starts = set(rewritten.address_map.values())
        recovered = len(moved_starts & second.instruction_starts)
        assert recovered / len(moved_starts) > 0.97
