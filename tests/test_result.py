"""Tests for the shared DisassemblyResult type."""

from hypothesis import given
from hypothesis import strategies as st

from repro.result import DisassemblyResult


def sample() -> DisassemblyResult:
    return DisassemblyResult(
        tool="x",
        instructions={0: 2, 2: 5, 10: 1},
        data_regions=[(7, 10), (11, 16)],
        function_entries={0, 10},
    )


class TestAccessors:
    def test_instruction_starts(self):
        assert sample().instruction_starts == {0, 2, 10}

    def test_code_byte_offsets(self):
        assert sample().code_byte_offsets() == {0, 1, 2, 3, 4, 5, 6, 10}

    def test_data_byte_offsets(self):
        assert sample().data_byte_offsets() == {7, 8, 9, 11, 12, 13, 14,
                                                15}

    def test_summary(self):
        text = sample().summary()
        assert "3 instructions" in text
        assert "2 data regions" in text
        assert "2 functions" in text


class TestSerialization:
    def test_round_trip(self):
        result = sample()
        restored = DisassemblyResult.from_json(result.to_json())
        assert restored.tool == result.tool
        assert restored.instructions == result.instructions
        assert restored.data_regions == result.data_regions
        assert restored.function_entries == result.function_entries

    @given(
        instructions=st.dictionaries(st.integers(0, 1000),
                                     st.integers(1, 15), max_size=30),
        entries=st.sets(st.integers(0, 1000), max_size=10),
    )
    def test_round_trip_random(self, instructions, entries):
        result = DisassemblyResult(tool="t", instructions=instructions,
                                   function_entries=entries)
        restored = DisassemblyResult.from_json(result.to_json())
        assert restored.instructions == instructions
        assert restored.function_entries == entries

    def test_real_result_round_trips(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        restored = DisassemblyResult.from_json(result.to_json())
        assert restored.instructions == result.instructions
        assert restored.data_regions == result.data_regions
