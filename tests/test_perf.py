"""Tests for phase-timing instrumentation, plus the perf smoke test."""

import json
import time

from repro.perf import PhaseTimings, bench_payload, write_bench_json
from repro.synth import BinarySpec, MSVC_LIKE, generate_binary

#: Phases disassemble_rich must always report, in pipeline order.
PIPELINE_PHASES = ("superset", "behavior", "scoring", "tables",
                   "correction", "gaps", "functions")

#: Generous wall-clock bound for disassembling a mid-size binary; the
#: real cost is well under a tenth of this on any modern machine, so a
#: failure means a genuine performance regression, not a slow runner.
SMOKE_BUDGET_SECONDS = 90.0


class TestPhaseTimings:
    def test_phase_records_elapsed_time(self):
        timings = PhaseTimings()
        with timings.phase("work"):
            time.sleep(0.01)
        assert timings.phases["work"] >= 0.01

    def test_reentered_phase_accumulates(self):
        timings = PhaseTimings()
        for _ in range(3):
            with timings.phase("loop"):
                pass
        assert list(timings.phases) == ["loop"]
        assert timings.phases["loop"] >= 0.0

    def test_phase_records_on_exception(self):
        timings = PhaseTimings()
        try:
            with timings.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in timings.phases

    def test_as_dict_includes_total(self):
        timings = PhaseTimings()
        timings.add("a", 1.0)
        timings.add("b", 2.0)
        assert timings.as_dict() == {"a": 1.0, "b": 2.0, "total": 3.0}

    def test_render_and_log_lines(self):
        timings = PhaseTimings()
        timings.add("superset", 0.5)
        rendered = timings.render()
        assert "superset" in rendered and "total" in rendered
        assert timings.log_lines() == ["phase superset: 500.0ms"]

    def test_empty_render(self):
        assert PhaseTimings().render() == "no phases recorded"


class TestBenchJson:
    def test_write_bench_json_round_trips(self, tmp_path):
        payload = bench_payload(kind="unit-test", numbers={"x": 1.5})
        path = write_bench_json(tmp_path / "sub" / "BENCH_test.json",
                                payload)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "repro-bench-v1"
        assert loaded["kind"] == "unit-test"
        assert loaded["numbers"] == {"x": 1.5}
        assert loaded["cpu_count"] >= 1


class TestPerfSmoke:
    def test_midsize_binary_within_budget_with_full_phase_report(
            self, disassembler):
        case = generate_binary(BinarySpec(name="perf-smoke",
                                          style=MSVC_LIKE,
                                          function_count=30, seed=11))
        started = time.perf_counter()
        rich = disassembler.disassemble_rich(case)
        elapsed = time.perf_counter() - started

        assert elapsed < SMOKE_BUDGET_SECONDS, (
            f"disassembly took {elapsed:.1f}s -- performance regression")
        for phase in PIPELINE_PHASES:
            assert phase in rich.timings.phases, f"missing phase {phase}"
            assert rich.timings.phases[phase] >= 0.0
        assert rich.timings.total <= elapsed
        # Timings are surfaced through the engine log as well.
        logged = [line for line in rich.log if line.startswith("phase ")]
        assert len(logged) == len(PIPELINE_PHASES)

    def test_disassembly_intermediates_still_exposed(self, disassembler,
                                                     msvc_case):
        rich = disassembler.disassemble_rich(msvc_case)
        assert isinstance(rich.resolved_tables, list)
        assert rich.result.instructions
