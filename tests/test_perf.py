"""Tests for phase-timing instrumentation, plus the perf smoke test."""

import json
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perf import (PhaseTimings, bench_envelope, bench_payload,
                        validate_bench_envelope, write_bench_json)
from repro.synth import BinarySpec, MSVC_LIKE, generate_binary

#: Phases disassemble_rich must always report, in pipeline order.
PIPELINE_PHASES = ("superset", "behavior", "scoring", "tables",
                   "correction", "gaps", "functions")

#: Generous wall-clock bound for disassembling a mid-size binary; the
#: real cost is well under a tenth of this on any modern machine, so a
#: failure means a genuine performance regression, not a slow runner.
SMOKE_BUDGET_SECONDS = 90.0


class TestPhaseTimings:
    def test_phase_records_elapsed_time(self):
        timings = PhaseTimings()
        with timings.phase("work"):
            time.sleep(0.01)
        assert timings.phases["work"] >= 0.01

    def test_reentered_phase_accumulates(self):
        timings = PhaseTimings()
        for _ in range(3):
            with timings.phase("loop"):
                pass
        assert list(timings.phases) == ["loop"]
        assert timings.phases["loop"] >= 0.0

    def test_phase_records_on_exception(self):
        timings = PhaseTimings()
        try:
            with timings.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in timings.phases

    def test_as_dict_includes_total(self):
        timings = PhaseTimings()
        timings.add("a", 1.0)
        timings.add("b", 2.0)
        assert timings.as_dict() == {"a": 1.0, "b": 2.0, "total": 3.0}

    def test_render_and_log_lines(self):
        timings = PhaseTimings()
        timings.add("superset", 0.5)
        rendered = timings.render()
        assert "superset" in rendered and "total" in rendered
        assert timings.log_lines() == ["phase superset: 500.0ms"]

    def test_empty_render(self):
        assert PhaseTimings().render() == "no phases recorded"

    def test_nested_phases_account_time_to_both_levels(self):
        # The engine nests timers (a correction pass inside the overall
        # correction phase); the outer bucket must cover the inner one.
        timings = PhaseTimings()
        with timings.phase("correction"):
            with timings.phase("correction/trace"):
                time.sleep(0.01)
        assert timings.phases["correction"] >= \
            timings.phases["correction/trace"] >= 0.01

    def test_merge_accumulates_phase_by_phase(self):
        base = PhaseTimings()
        base.add("superset", 1.0)
        other = PhaseTimings()
        other.add("superset", 0.5)
        other.add("scoring", 0.25)
        base.merge(other)
        assert base.phases == {"superset": 1.5, "scoring": 0.25}

    def test_merge_of_as_dict_dump_skips_total(self):
        # Worker processes ship timings as as_dict() dumps; merging one
        # must not double-count through the derived "total" key.
        base = PhaseTimings()
        dump = PhaseTimings()
        dump.add("superset", 1.0)
        dump.add("scoring", 1.0)
        base.merge(dump.as_dict())
        base.merge(dump.as_dict())
        assert "total" not in base.phases
        assert base.as_dict() == {"superset": 2.0, "scoring": 2.0,
                                  "total": 4.0}

    @given(runs=st.lists(
        st.lists(st.tuples(st.sampled_from(PIPELINE_PHASES),
                           st.floats(min_value=0.0, max_value=1e6,
                                     allow_nan=False)),
                 max_size=8),
        max_size=6))
    def test_merging_dumps_equals_one_accumulated_run(self, runs):
        # The round-trip contract documented on merge()/as_dict():
        # splitting a workload over N timers, dumping each, and merging
        # the dumps reconstructs the single-accumulator run exactly (up
        # to float summation order).
        accumulated = PhaseTimings()
        merged = PhaseTimings()
        for run in runs:
            worker = PhaseTimings()
            for name, seconds in run:
                worker.add(name, seconds)
                accumulated.add(name, seconds)
            merged.merge(worker.as_dict())
        assert set(merged.phases) == set(accumulated.phases)
        assert "total" not in merged.phases
        assert merged.as_dict() == pytest.approx(accumulated.as_dict())


class TestBenchJson:
    def test_write_bench_json_round_trips(self, tmp_path):
        payload = bench_payload(kind="unit-test", numbers={"x": 1.5})
        path = write_bench_json(tmp_path / "sub" / "BENCH_test.json",
                                payload)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "repro-bench-v1"
        assert loaded["kind"] == "unit-test"
        assert loaded["numbers"] == {"x": 1.5}
        assert loaded["cpu_count"] >= 1


class TestBenchEnvelope:
    def test_envelope_shape_and_environment_stamp(self):
        doc = bench_envelope("decode", config={"sections": 4},
                             metrics={"speedup": 8.0})
        assert doc["schema"] == "repro-bench-v1"
        assert doc["tool"] == "decode"
        assert doc["config"] == {"sections": 4}
        assert doc["metrics"] == {"speedup": 8.0}
        assert doc["cpu_count"] >= 1 and "python" in doc

    def test_extra_fields_land_top_level(self):
        # bench_fleet embeds its trend document beside the envelope so
        # load_trend() keeps reading BENCH_fleet.json as a baseline.
        doc = bench_envelope("fleet", metrics={"throughput": 2.0},
                             trend={"binaries": {"total": 9}})
        assert doc["trend"] == {"binaries": {"total": 9}}
        assert "trend" not in doc["metrics"]

    def test_valid_envelope_round_trips_validation(self, tmp_path):
        doc = bench_envelope("obs", config={"repeats": 3},
                             metrics={"seconds": {"off": 1.0},
                                      "overhead_pct": 1.5})
        path = write_bench_json(tmp_path / "BENCH_obs.json", doc)
        assert validate_bench_envelope(
            json.loads(path.read_text())) == []

    @pytest.mark.parametrize("breakage, fragment", [
        ({"schema": "repro-bench-v0"}, "schema"),
        ({"tool": ""}, "tool"),
        ({"config": None}, "config"),
        ({"metrics": [1, 2]}, "metrics"),
        ({"metrics": {"name": "fast"}}, "numeric"),
        ({"metrics": {"ok": True}}, "numeric"),
        ({"metrics": {"nested": {"flag": "x"}}}, "numeric"),
    ])
    def test_validation_names_each_defect(self, breakage, fragment):
        doc = bench_envelope("decode", metrics={"speedup": 8.0})
        doc.update(breakage)
        problems = validate_bench_envelope(doc)
        assert problems, breakage
        assert any(fragment in problem for problem in problems)

    def test_every_bench_script_payload_validates(self):
        # One representative payload per migrated bench_*.py script;
        # keeps the scripts and the validator from drifting apart.
        shapes = {
            "decode": {"seconds": 1.2, "speedup": 8.0,
                       "superset_identical": 1},
            "correct": {"ms_per_binary": 50.0,
                        "mean_reused_fraction": 0.9, "speedup": 3.5},
            "fleet": {"throughput": 2.0, "seconds": 4.5},
            "serve": {"cold_rps": 10.0,
                      "cold": {"p50_ms": 5.0, "p99_ms": 9.0},
                      "hit_speedup": 20.0},
            "formats": {"results": {"elf": {"bytes": 100}},
                        "elf_over_rprb_ratio": 1.2},
            "obs": {"seconds": {"control": 1.0, "off": 1.01},
                    "off_overhead_pct": 1.0, "spans_disabled": 0,
                    "samples_disabled": 0},
            "experiments": {"experiments": {"t2": {"f1": 0.99}},
                            "total_s": 12.0},
        }
        for tool, metrics in shapes.items():
            doc = bench_envelope(tool, config={"n": 1},
                                 metrics=metrics)
            assert validate_bench_envelope(doc) == [], tool


class TestPerfSmoke:
    def test_midsize_binary_within_budget_with_full_phase_report(
            self, disassembler):
        case = generate_binary(BinarySpec(name="perf-smoke",
                                          style=MSVC_LIKE,
                                          function_count=30, seed=11))
        started = time.perf_counter()
        rich = disassembler.disassemble_rich(case)
        elapsed = time.perf_counter() - started

        assert elapsed < SMOKE_BUDGET_SECONDS, (
            f"disassembly took {elapsed:.1f}s -- performance regression")
        for phase in PIPELINE_PHASES:
            assert phase in rich.timings.phases, f"missing phase {phase}"
            assert rich.timings.phases[phase] >= 0.0
        assert rich.timings.total <= elapsed
        # Timings are surfaced through the engine log as well.
        logged = [line for line in rich.log if line.startswith("phase ")]
        assert len(logged) == len(PIPELINE_PHASES)

    def test_disassembly_intermediates_still_exposed(self, disassembler,
                                                     msvc_case):
        rich = disassembler.disassemble_rich(msvc_case)
        assert isinstance(rich.resolved_tables, list)
        assert rich.result.instructions
