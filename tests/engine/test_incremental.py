"""Incremental re-disassembly must be indistinguishable from cold.

The contract of :func:`repro.core.disassemble_incremental` is exact:
for any byte patch, the incremental result (instructions, data
regions, scores -- everything) is bit-identical to a cold run over the
patched bytes.  Hypothesis drives random patches; deterministic tests
cover the structured cases (grown text, fallbacks, span diffing).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Disassembler, FactBase, disassemble_incremental
from repro.core.engine import diff_spans
from repro.synth import BinarySpec, GCC_LIKE, MSVC_LIKE, generate_binary


@pytest.fixture(scope="module")
def small_case(models):
    return generate_binary(BinarySpec(name="inc", style=GCC_LIKE,
                                      function_count=6, seed=11))


@pytest.fixture(scope="module")
def snapshot(small_case):
    disassembler = Disassembler()
    rich = disassembler.disassemble_rich(small_case)
    return disassembler, FactBase.from_run(rich, disassembler.config)


def patched(case, edits):
    """The case's binary with text bytes replaced per ``edits``."""
    binary = case.binary
    text = bytearray(binary.text.data)
    for offset, value in edits.items():
        text[offset % len(text)] = value
    new_text = dataclasses.replace(binary.text, data=bytes(text))
    sections = tuple(new_text if s is binary.text else s
                     for s in binary.sections)
    return dataclasses.replace(binary, sections=sections)


def assert_identical(incremental, cold):
    assert incremental.result.to_json() == cold.result.to_json()
    assert np.array_equal(incremental.scores, cold.scores)
    assert np.array_equal(incremental.stat_scores, cold.stat_scores)
    assert np.array_equal(incremental.behavior_scores,
                          cold.behavior_scores)


class TestDiffSpans:
    def test_identical_texts_have_no_spans(self):
        assert diff_spans(b"abcdef", b"abcdef") == []

    def test_single_byte(self):
        assert diff_spans(b"abcdef", b"abXdef") == [(2, 3)]

    def test_adjacent_changes_merge(self):
        assert diff_spans(b"abcdef", b"abXYef") == [(2, 4)]

    def test_separated_changes_stay_apart(self):
        assert diff_spans(b"abcdef", b"Xbcdef"[:6]) == [(0, 1)]
        assert diff_spans(b"abcdef", b"XbcdeY") == [(0, 1), (5, 6)]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            diff_spans(b"abc", b"abcd")


class TestRandomPatches:
    @settings(max_examples=10, deadline=None)
    @given(st.dictionaries(st.integers(min_value=0, max_value=1 << 16),
                           st.integers(min_value=0, max_value=255),
                           min_size=1, max_size=4))
    def test_incremental_equals_cold(self, snapshot, small_case, edits):
        disassembler, base = snapshot
        target = patched(small_case, edits)
        incremental, stats = disassemble_incremental(disassembler, base,
                                                     target)
        cold = Disassembler().disassemble_rich(target)
        assert not stats.cold
        assert_identical(incremental, cold)
        assert stats.redecoded <= stats.total
        assert 0.0 <= stats.reused_fraction <= 1.0


class TestStructuredCases:
    def test_unchanged_resubmission_reuses_everything(self, snapshot,
                                                      small_case):
        disassembler, base = snapshot
        incremental, stats = disassemble_incremental(
            disassembler, base, small_case.binary)
        cold = Disassembler().disassemble_rich(small_case.binary)
        assert_identical(incremental, cold)
        assert stats.changed_bytes == 0
        assert stats.redecoded == 0
        assert stats.reused_fraction == 1.0

    def test_localized_patch_rescores_a_bounded_window(self, snapshot,
                                                       small_case):
        disassembler, base = snapshot
        target = patched(small_case, {100: 0xC3})
        _, stats = disassemble_incremental(disassembler, base, target)
        assert stats.changed_bytes == 1
        # One decode window back plus the changed byte.
        assert stats.redecoded <= 32
        assert stats.redecoded < stats.total

    def test_grown_text_is_incremental(self, snapshot, small_case):
        """Rewrite round-trips append a code appendix; the extension is
        one changed span, the untouched prefix is reused."""
        disassembler, base = snapshot
        binary = small_case.binary
        grown_text = binary.text.data + b"\xc3" * 64
        new_text = dataclasses.replace(binary.text, data=grown_text)
        sections = tuple(new_text if s is binary.text else s
                         for s in binary.sections)
        target = dataclasses.replace(binary, sections=sections)
        incremental, stats = disassemble_incremental(disassembler, base,
                                                     target)
        cold = Disassembler().disassemble_rich(target)
        assert not stats.cold
        assert_identical(incremental, cold)

    def test_rewrite_round_trip_is_incremental(self, models):
        from repro.rewrite import rewrite_binary
        case = generate_binary(BinarySpec(name="inc-rw", style=MSVC_LIKE,
                                          function_count=6, seed=5))
        disassembler = Disassembler()
        rich = disassembler.disassemble_rich(case)
        base = FactBase.from_run(rich, disassembler.config)
        rewritten = rewrite_binary(rich, case.binary)
        incremental, stats = disassemble_incremental(disassembler, base,
                                                     rewritten.binary)
        cold = Disassembler().disassemble_rich(rewritten.binary)
        assert not stats.cold
        assert_identical(incremental, cold)


class TestColdFallbacks:
    def test_shrunk_text_falls_back(self, snapshot, small_case):
        disassembler, base = snapshot
        binary = small_case.binary
        new_text = dataclasses.replace(binary.text,
                                       data=binary.text.data[:-16])
        sections = tuple(new_text if s is binary.text else s
                         for s in binary.sections)
        target = dataclasses.replace(binary, sections=sections)
        _, stats = disassemble_incremental(disassembler, base, target)
        assert stats.cold
        assert stats.reason == "shrunk"
        assert stats.reused_fraction == 0.0

    def test_config_mismatch_falls_back(self, snapshot, small_case):
        from repro.core import DisassemblerConfig
        disassembler, base = snapshot
        other = Disassembler(config=DisassemblerConfig(chain_window=9))
        result, stats = disassemble_incremental(other, base,
                                                small_case.binary)
        assert stats.cold
        assert stats.reason == "config"
        # The fallback still produces a full, correct disassembly.
        assert result.result.instruction_starts
