"""Differential suite: fact engine vs the legacy worklist oracle.

The declarative fact/rule engine (the default backend) must reproduce
the hand-sequenced worklist engine byte-for-byte: identical
DisassemblyResult JSON, identical correction logs, and identical
provenance event streams, corpus-wide and across every ablation
config.  The CI ``engine`` job additionally runs the whole test suite
under ``REPRO_ENGINE=worklist`` to prove the oracle still passes on
its own.
"""

import json

import pytest

import repro.core.engine as eng
from repro.core import ABLATION_CONFIGS, Disassembler, DisassemblerConfig
from repro.eval.dataset import evaluation_corpus


def _case(name):
    for case in evaluation_corpus():
        if case.name == name:
            return case
    raise KeyError(name)


def _run(monkeypatch, backend, case, config=None):
    monkeypatch.setattr(eng, "_BACKEND", backend)
    disassembler = (Disassembler(config=config) if config is not None
                    else Disassembler())
    return disassembler.disassemble_rich(case)


def _corpus_names():
    return [case.name for case in evaluation_corpus()]


@pytest.mark.usefixtures("models")
class TestCorpusEquivalence:
    @pytest.mark.parametrize("name", _corpus_names())
    def test_results_byte_identical(self, monkeypatch, name):
        case = _case(name)
        facts = _run(monkeypatch, "facts", case)
        worklist = _run(monkeypatch, "worklist", case)
        assert facts.result.to_json() == worklist.result.to_json()

    @pytest.mark.parametrize("name", _corpus_names()[:3])
    def test_correction_logs_identical(self, monkeypatch, name):
        """Same decisions in the same order (timing lines excluded)."""
        case = _case(name)
        facts = _run(monkeypatch, "facts", case)
        worklist = _run(monkeypatch, "worklist", case)
        strip = lambda log: [l for l in log if not l.startswith("phase ")]
        assert strip(facts.log) == strip(worklist.log)


@pytest.mark.usefixtures("models")
class TestConfigSweepEquivalence:
    @pytest.mark.parametrize("config_name", sorted(ABLATION_CONFIGS))
    def test_ablations_identical(self, monkeypatch, config_name):
        case = _case("msvc-like-s0")
        config = ABLATION_CONFIGS[config_name]
        facts = _run(monkeypatch, "facts", case, config)
        worklist = _run(monkeypatch, "worklist", case, config)
        assert facts.result.to_json() == worklist.result.to_json()


@pytest.mark.usefixtures("models")
class TestProvenanceEquivalence:
    def test_decision_events_identical(self, monkeypatch):
        """Rule firings emit the same provenance the hand-placed hooks
        did -- event-for-event, attribute-for-attribute."""
        case = _case("gcc-like-s0")
        config = DisassemblerConfig(record_provenance=True)
        facts = _run(monkeypatch, "facts", case, config)
        worklist = _run(monkeypatch, "worklist", case, config)
        facts_events = [e.render() for e in facts.provenance.events]
        oracle_events = [e.render() for e in worklist.provenance.events]
        assert len(facts_events) > 100
        assert facts_events == oracle_events


@pytest.mark.usefixtures("models")
class TestBackendSeam:
    def test_default_backend_is_facts(self):
        assert eng.engine_backend() in ("facts", "worklist")

    def test_worklist_facts_export_is_empty(self, monkeypatch):
        """The oracle predates the fact store: it exports no region
        facts, so fact-consuming satellites (lint) degrade silently."""
        case = _case("gcc-like-s1")
        worklist = _run(monkeypatch, "worklist", case)
        assert worklist.facts is None or len(worklist.facts) == 0

    def test_facts_backend_exports_regions(self, monkeypatch):
        case = _case("gcc-like-s1")
        facts = _run(monkeypatch, "facts", case)
        assert facts.facts is not None and len(facts.facts) > 0
