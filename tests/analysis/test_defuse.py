"""Tests for register def-use chain analysis."""

from repro.isa import Assembler, decode
from repro.isa.registers import R10, R11, R13, RAX, RCX, RDI
from repro.analysis.defuse import (CONVENTIONALLY_LIVE, analyze_chain,
                                   _is_zeroing_idiom)


def chain_of(fn) -> list:
    a = Assembler()
    fn(a)
    raw = a.finish()
    chain = []
    offset = 0
    while offset < len(raw):
        ins = decode(raw, offset)
        chain.append(ins)
        offset = ins.end
    return chain


class TestDefUsePairs:
    def test_write_then_read_is_a_pair(self):
        chain = chain_of(lambda a: (a.mov_ri(R10, 5, width=32),
                                    a.alu_rr("add", RAX, R10)))
        signals = analyze_chain(chain)
        assert signals.defuse_pairs >= 1
        assert signals.register_anomalies == 0

    def test_read_of_unconventional_register_is_anomaly(self):
        chain = chain_of(lambda a: a.alu_rr("add", RAX, R10))
        signals = analyze_chain(chain)
        assert signals.register_anomalies >= 1

    def test_argument_registers_are_not_anomalies(self):
        chain = chain_of(lambda a: a.alu_rr("add", RAX, RDI))
        assert analyze_chain(chain).register_anomalies == 0

    def test_callee_saved_reads_allowed(self):
        assert R13 in CONVENTIONALLY_LIVE
        chain = chain_of(lambda a: a.mov_rr(RAX, R13))
        assert analyze_chain(chain).register_anomalies == 0

    def test_pair_density(self):
        chain = chain_of(lambda a: (a.mov_ri(RCX, 1, width=32),
                                    a.alu_rr("add", RCX, RCX, width=32),
                                    a.mov_rr(RAX, RCX)))
        signals = analyze_chain(chain)
        assert signals.pair_density > 0.5


class TestZeroingIdiom:
    def test_xor_self_defines_without_reading(self):
        chain = chain_of(lambda a: (a.alu_rr("xor", R11, R11, width=32),
                                    a.alu_rr("add", RAX, R11)))
        signals = analyze_chain(chain)
        assert signals.register_anomalies == 0
        assert signals.defuse_pairs >= 1

    def test_xor_with_other_register_is_not_idiom(self):
        ins = chain_of(lambda a: a.alu_rr("xor", RAX, RCX))[0]
        assert not _is_zeroing_idiom(ins)

    def test_sub_self_is_idiom(self):
        ins = chain_of(lambda a: a.alu_rr("sub", RAX, RAX))[0]
        assert _is_zeroing_idiom(ins)


class TestFlags:
    def test_cmp_then_jcc_is_a_flag_pair(self):
        a = Assembler()
        a.alu_rr("cmp", RAX, RCX)
        a.jcc("e", "x")
        a.bind("x")
        raw = a.finish()
        chain = [decode(raw, 0), decode(raw, 3)]
        signals = analyze_chain(chain)
        assert signals.flag_pairs == 1
        assert signals.flag_anomalies == 0

    def test_jcc_without_producer_is_anomaly(self):
        chain = chain_of(lambda a: (a.mov_rr(RAX, RCX),))
        a = Assembler()
        a.jcc("e", "x")
        a.bind("x")
        jcc = decode(a.finish(), 0)
        signals = analyze_chain(chain + [jcc])
        assert signals.flag_anomalies == 1


class TestCalls:
    def test_call_invalidates_scratch_knowledge(self):
        a = Assembler()
        a.mov_ri(R10, 5, width=32)
        a.call("f")
        a.alu_rr("add", RAX, R10)     # r10 no longer known-defined
        a.bind("f")
        raw = a.finish()
        chain = []
        offset = 0
        for _ in range(3):
            ins = decode(raw, offset)
            chain.append(ins)
            offset = ins.end
        signals = analyze_chain(chain)
        # Reading r10 after the call is an anomaly again (r10 is neither
        # conventionally live nor defined post-call).
        assert signals.register_anomalies >= 1

    def test_rax_defined_after_call(self):
        a = Assembler()
        a.call("f")
        a.mov_rr(RCX, RAX)
        a.bind("f")
        raw = a.finish()
        chain = [decode(raw, 0), decode(raw, 5)]
        signals = analyze_chain(chain)
        assert signals.defuse_pairs >= 1


class TestEmptyChain:
    def test_empty_chain(self):
        signals = analyze_chain([])
        assert signals.instructions == 0
        assert signals.pair_density == 0.0
        assert signals.anomaly_density == 0.0
