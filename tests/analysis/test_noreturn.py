"""Tests for the returning-ness (noreturn) analysis."""

from repro.analysis.noreturn import compute_returning
from repro.isa import Assembler, Mem
from repro.isa.registers import RAX, RBP, RDI
from repro.superset import Superset


def superset_of(fn) -> tuple[Superset, Assembler]:
    a = Assembler()
    fn(a)
    return Superset.build(a.finish()), a


class TestBasicVerdicts:
    def test_plain_function_returns(self):
        superset, _ = superset_of(lambda a: (a.push_r(RBP),
                                             a.pop_r(RBP), a.ret()))
        assert compute_returning(superset, {0}) == {0: True}

    def test_hlt_function_is_noreturn(self):
        superset, _ = superset_of(lambda a: (a.mov_ri(RAX, 1, width=32),
                                             a.hlt()))
        assert compute_returning(superset, {0}) == {0: False}

    def test_ud2_function_is_noreturn(self):
        superset, _ = superset_of(lambda a: a.ud2())
        assert compute_returning(superset, {0}) == {0: False}

    def test_infinite_loop_is_noreturn(self):
        def body(a):
            a.bind("spin")
            a.jmp("spin")
        superset, _ = superset_of(body)
        assert compute_returning(superset, {0}) == {0: False}

    def test_branchy_function_with_one_return_path(self):
        def body(a):
            a.test_rr(RAX, RAX)
            a.jcc("e", "die")
            a.ret()
            a.bind("die")
            a.ud2()
        superset, _ = superset_of(body)
        assert compute_returning(superset, {0}) == {0: True}


class TestInterprocedural:
    def test_call_to_noreturn_propagates(self):
        def body(a):
            a.bind("wrapper")        # 0: tail-less wrapper around panic
            a.call("panic")
            a.hlt()                  # unreachable filler
            a.bind("panic")
            a.ud2()
        superset, asm = superset_of(body)
        panic = asm._labels["panic"]
        verdicts = compute_returning(superset, {0, panic})
        assert verdicts[panic] is False
        assert verdicts[0] is False

    def test_call_to_returning_function_is_fine(self):
        def body(a):
            a.call("helper")
            a.ret()
            a.bind("helper")
            a.ret()
        superset, asm = superset_of(body)
        helper = asm._labels["helper"]
        verdicts = compute_returning(superset, {0, helper})
        assert verdicts == {0: True, helper: True}

    def test_mutual_recursion_stays_returning(self):
        """The optimistic fixpoint never demotes cycle-dependent
        functions -- real code must not be lost."""
        def body(a):
            a.bind("a_fn")
            a.call("b_fn")
            a.ret()
            a.bind("b_fn")
            a.call("a_fn")
            a.ret()
        superset, asm = superset_of(body)
        a_fn, b_fn = asm._labels["a_fn"], asm._labels["b_fn"]
        verdicts = compute_returning(superset, {a_fn, b_fn})
        assert verdicts == {a_fn: True, b_fn: True}

    def test_mutual_panic_helpers_converge_to_noreturn(self):
        def body(a):
            a.bind("p1")
            a.test_rr(RAX, RAX)
            a.jcc("e", "p1_die")
            a.call("p2")
            a.bind("p1_die")
            a.ud2()
            a.bind("p2")
            a.call("p1")
            a.hlt()
        superset, asm = superset_of(body)
        p1, p2 = asm._labels["p1"], asm._labels["p2"]
        verdicts = compute_returning(superset, {p1, p2})
        assert verdicts == {p1: False, p2: False}

    def test_tail_call_to_noreturn(self):
        def body(a):
            a.bind("wrapper")
            a.jmp("panic")
            a.bind("panic")
            a.hlt()
        superset, asm = superset_of(body)
        panic = asm._labels["panic"]
        verdicts = compute_returning(superset, {0, panic})
        assert verdicts[0] is False


class TestIndirectFlow:
    def test_unresolved_ijump_assumed_returning(self):
        superset, _ = superset_of(lambda a: a.jmp_r(RAX))
        assert compute_returning(superset, {0}) == {0: True}

    def test_resolved_ijump_targets_are_followed(self):
        def body(a):
            a.jmp_m(Mem(index=RDI, scale=8, disp_label="t"))
            a.bind("case")
            a.hlt()
            a.bind("t")
            a.dq_label("case")
        superset, asm = superset_of(body)
        case = asm._labels["case"]
        verdicts = compute_returning(
            superset, {0}, resolved_jumps={0: (case,)})
        assert verdicts == {0: False}
        # Without resolution the same dispatch is assumed returning.
        assert compute_returning(superset, {0}) == {0: True}


class TestEndToEnd:
    def test_noreturn_blobs_not_claimed_as_code(self, disassembler,
                                                msvc_case):
        """Generated msvc-like binaries place data after noreturn calls;
        the disassembler must classify those bytes as data."""
        from repro.eval.metrics import evaluate
        rich = disassembler.disassemble_rich(msvc_case)
        evaluation = evaluate(rich.result, msvc_case.truth)
        assert evaluation.instructions.recall > 0.99
        # The engine identified at least one noreturn function.
        assert rich.noreturn_entries

    def test_detected_noreturn_entries_are_truly_noreturn(
            self, disassembler, all_cases):
        from repro.isa import decode
        for case in all_cases:
            rich = disassembler.disassemble_rich(case)
            for entry in rich.noreturn_entries:
                functions = [f for f in case.truth.functions
                             if f.entry == entry]
                if not functions:
                    continue
                span = functions[0]
                mnemonics = {
                    decode(case.text, s).mnemonic
                    for s in case.truth.instruction_starts
                    if span.entry <= s < span.end}
                assert mnemonics & {"hlt", "ud2"}, (case.name, hex(entry))
