"""Tests for prologue/padding idiom recognition."""

from repro.analysis.idioms import (PROLOGUE_THRESHOLD,
                                   likely_function_starts, padding_kind,
                                   prologue_score)
from repro.isa import Assembler
from repro.isa.registers import RAX, RBP, RBX, RSP
from repro.superset import Superset


def superset_of(fn) -> Superset:
    a = Assembler()
    fn(a)
    return Superset.build(a.finish())


class TestPrologueScore:
    def test_canonical_prologue(self):
        superset = superset_of(lambda a: (a.push_r(RBP),
                                          a.mov_rr(RBP, RSP),
                                          a.alu_ri("sub", RSP, 0x20),
                                          a.ret()))
        assert prologue_score(superset, 0) >= 4

    def test_endbr_prologue(self):
        superset = superset_of(lambda a: (a.endbr64(), a.push_r(RBP),
                                          a.mov_rr(RBP, RSP), a.ret()))
        assert prologue_score(superset, 0) >= 4

    def test_frameless_opening(self):
        superset = superset_of(lambda a: (a.alu_ri("sub", RSP, 0x18),
                                          a.ret()))
        assert prologue_score(superset, 0) >= 1

    def test_callee_saved_push(self):
        superset = superset_of(lambda a: (a.push_r(RBX),
                                          a.alu_ri("sub", RSP, 8),
                                          a.ret()))
        assert prologue_score(superset, 0) >= 2

    def test_plain_code_is_not_a_prologue(self):
        superset = superset_of(lambda a: (a.alu_rr("add", RAX, RAX),
                                          a.ret()))
        assert prologue_score(superset, 0) < PROLOGUE_THRESHOLD

    def test_undecodable_offset(self):
        superset = Superset.build(b"\x06")
        assert prologue_score(superset, 0) == 0

    def test_real_function_entries_score_high(self, msvc_case,
                                              msvc_superset):
        hits = sum(
            1 for f in msvc_case.truth.functions
            if prologue_score(msvc_superset, f.entry) >= PROLOGUE_THRESHOLD)
        assert hits / len(msvc_case.truth.functions) > 0.6


class TestPaddingKind:
    def test_kinds(self):
        text = b"\xcc\x00\x90\x55"
        assert padding_kind(text, 0) == "int3"
        assert padding_kind(text, 1) == "zero"
        assert padding_kind(text, 2) == "nop"
        assert padding_kind(text, 3) is None


class TestLikelyFunctionStarts:
    def test_finds_aligned_prologues(self):
        a = Assembler()
        a.push_r(RBP)
        a.mov_rr(RBP, RSP)
        a.ret()
        a.align(16, b"\xcc")
        a.push_r(RBP)
        a.mov_rr(RBP, RSP)
        a.ret()
        superset = Superset.build(a.finish())
        starts = likely_function_starts(superset)
        assert 0 in starts and 16 in starts

    def test_recovers_most_real_entries(self, msvc_case, msvc_superset):
        found = set(likely_function_starts(msvc_superset))
        entries = msvc_case.truth.function_entries
        assert len(found & entries) / len(entries) > 0.5
