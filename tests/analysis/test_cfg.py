"""Tests for CFG construction over accepted instruction sets."""

from repro.analysis.cfg import build_cfg
from repro.isa import Assembler
from repro.isa.registers import RAX, RBP, RCX, RSP
from repro.superset import Superset


def make(fn):
    a = Assembler()
    fn(a)
    text = a.finish()
    superset = Superset.build(text)
    accepted = set()
    offset = 0
    while offset < len(text):
        ins = superset.at(offset)
        accepted.add(offset)
        offset = ins.end
    return superset, accepted


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        superset, accepted = make(lambda a: (a.push_r(RBP),
                                             a.mov_rr(RBP, RSP),
                                             a.ret()))
        cfg = build_cfg(superset, accepted)
        assert len(cfg.blocks) == 1
        block = cfg.blocks[0]
        assert len(block.instructions) == 3
        assert block.terminator.mnemonic == "ret"

    def test_branch_splits_blocks(self):
        def body(a):
            a.test_rr(RAX, RAX)
            a.jcc("e", "out")
            a.inc(RAX)
            a.bind("out")
            a.ret()
        superset, accepted = make(body)
        cfg = build_cfg(superset, accepted)
        assert len(cfg.blocks) == 3
        entry = cfg.blocks[0]
        successors = cfg.successors(0)
        assert len(successors) == 2

    def test_backward_edge(self):
        def body(a):
            a.mov_ri(RCX, 5, width=32)
            a.bind("top")
            a.dec(RCX, width=32)
            a.jcc("ne", "top")
            a.ret()
        superset, accepted = make(body)
        cfg = build_cfg(superset, accepted)
        loop_head = 5    # after the 5-byte mov
        assert loop_head in cfg.blocks
        assert loop_head in cfg.successors(loop_head)

    def test_call_does_not_create_interproc_edge(self):
        def body(a):
            a.call("f")
            a.ret()
            a.bind("f")
            a.ret()
        superset, accepted = make(body)
        cfg = build_cfg(superset, accepted)
        # Calls do not end blocks; the callee is its own block (it is a
        # branch-target leader) with no intraprocedural edge from the
        # caller.
        caller = cfg.blocks[0]
        assert [i.mnemonic for i in caller.instructions] == ["call", "ret"]
        callee = superset.at(0).branch_target
        assert callee in cfg.blocks
        assert callee not in cfg.successors(0)

    def test_reachable_from(self):
        def body(a):
            a.jmp("end")
            a.ret()       # unreachable
            a.bind("end")
            a.ret()
        superset, accepted = make(body)
        cfg = build_cfg(superset, accepted)
        reached = cfg.reachable_from([0])
        assert 6 in reached     # the jump target block
        assert 5 not in reached  # the dead ret

    def test_reachable_from_accepts_any_iterable(self):
        def body(a):
            a.jmp("end")
            a.ret()       # unreachable
            a.bind("end")
            a.ret()
        superset, accepted = make(body)
        cfg = build_cfg(superset, accepted)
        from_list = cfg.reachable_from([0])
        assert cfg.reachable_from({0}) == from_list
        assert cfg.reachable_from(iter((0,))) == from_list
        assert cfg.reachable_from(frozenset({0})) == from_list
        # Non-block offsets are ignored, not an error.
        assert cfg.reachable_from({0, 999}) == from_list
        assert cfg.reachable_from(()) == set()

    def test_successors_and_predecessors(self):
        def body(a):
            a.test_rr(RAX, RAX)
            a.jcc("e", "out")
            a.inc(RAX)
            a.bind("out")
            a.ret()
        superset, accepted = make(body)
        cfg = build_cfg(superset, accepted)
        starts = sorted(cfg.blocks)
        entry, taken, out = starts
        # The entry block branches to both the fall-through block and
        # the jump-target block; both converge on "out".
        assert cfg.successors(entry) == [taken, out]
        assert cfg.predecessors(entry) == []
        assert cfg.successors(taken) == [out]
        assert sorted(cfg.predecessors(out)) == [entry, taken]
        assert cfg.successors(out) == []

    def test_call_fallthrough_edge_exists(self):
        def body(a):
            a.call("f")
            a.inc(RAX)
            a.bind("f")
            a.ret()
        superset, accepted = make(body)
        cfg = build_cfg(superset, accepted)
        callee = superset.at(0).branch_target
        # The callee is a leader, which splits the caller's block; the
        # fall-through edge from call to the next instruction remains
        # intraprocedural only if a block boundary exists there.
        assert callee in cfg.blocks
        in_blocks = [i.offset for b in cfg.blocks.values()
                     for i in b.instructions]
        assert set(in_blocks) == accepted

    def test_blocks_partition_instructions(self, msvc_case, msvc_superset):
        accepted = msvc_case.truth.instruction_starts
        cfg = build_cfg(msvc_superset, accepted)
        in_blocks = [i.offset for b in cfg.blocks.values()
                     for i in b.instructions]
        assert len(in_blocks) == len(set(in_blocks))
        assert set(in_blocks) == accepted
