"""Tests for behavioral chain scoring."""

import numpy as np

from repro.analysis.behavior import BehaviorAnalyzer, BehaviorWeights
from repro.isa import Assembler
from repro.isa.registers import RAX, RBP, RSP
from repro.superset import Superset


def superset_of(fn) -> Superset:
    a = Assembler()
    fn(a)
    return Superset.build(a.finish())


class TestReports:
    def test_invalid_fallthrough_detected(self):
        superset = Superset.build(b"\x90\x06\x90")   # nop, invalid
        report = BehaviorAnalyzer().report(superset, 0)
        assert report.invalid_fallthrough
        assert report.score() < 0

    def test_clean_terminated_chain(self):
        superset = superset_of(lambda a: (a.push_r(RBP),
                                          a.mov_rr(RBP, RSP),
                                          a.ret()))
        report = BehaviorAnalyzer().report(superset, 0)
        assert report.terminated
        assert not report.invalid_fallthrough
        assert report.score() > 0

    def test_trap_in_chain_penalized(self):
        clean = superset_of(lambda a: (a.mov_ri(RAX, 1, width=32), a.ret()))
        trapped = superset_of(lambda a: (a.mov_ri(RAX, 1, width=32),
                                         a.int3(), a.int3(), a.ret()))
        analyzer = BehaviorAnalyzer()
        assert analyzer.report(trapped, 0).traps == 2
        assert (analyzer.report(trapped, 0).score()
                < analyzer.report(clean, 0).score())

    def test_rare_instructions_counted(self):
        superset = superset_of(lambda a: (a.hlt(), a.ret()))
        report = BehaviorAnalyzer().report(superset, 0)
        assert report.rare >= 1

    def test_undecodable_offset_report(self):
        superset = Superset.build(b"\x06")
        report = BehaviorAnalyzer().report(superset, 0)
        assert report.chain_length == 0


class TestScoreAll:
    def test_shape_and_floor(self, msvc_superset):
        analyzer = BehaviorAnalyzer()
        scores = analyzer.score_all(msvc_superset)
        assert scores.shape == (len(msvc_superset),)
        floor = analyzer.weights.invalid_fallthrough
        for offset in msvc_superset.invalid_offsets:
            assert scores[offset] == floor

    def test_separates_code_from_data(self, msvc_case, msvc_superset):
        scores = BehaviorAnalyzer().score_all(msvc_superset)
        truth = msvc_case.truth
        start_mean = np.mean([scores[o]
                              for o in truth.instruction_starts])
        data_offsets = [o for s, e in truth.data_regions()
                        for o in range(s, e)]
        data_mean = np.mean([scores[o] for o in data_offsets])
        assert start_mean > data_mean


class TestWeights:
    def test_custom_weights_change_score(self):
        superset = superset_of(lambda a: (a.int3(), a.ret()))
        lenient = BehaviorWeights(trap_in_chain=0.0)
        strict = BehaviorWeights(trap_in_chain=-10.0)
        report = BehaviorAnalyzer().report(superset, 0)
        assert report.score(lenient) > report.score(strict)
