"""Soundness: a ground-truth-perfect claim never produces an ERROR.

This is the linter's load-bearing guarantee -- ERROR rules encode
invariants that hold for any correct disassembly of a conventional
binary, so the CI gate (and the feedback loop) can trust them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.evaluation import error_count, perfect_report
from repro.synth import STYLES
from repro.synth.corpus import BinarySpec, generate_binary


def test_perfect_claims_are_error_free_on_corpus(all_cases):
    for case in all_cases:
        report = perfect_report(case)
        errors = report.errors
        assert error_count(report) == 0, \
            f"{case.name}: {[d.to_dict() for d in errors]}"


@settings(max_examples=8, deadline=None)
@given(style=st.sampled_from(sorted(STYLES)), seed=st.integers(0, 30))
def test_perfect_claims_are_error_free_property(style, seed):
    case = generate_binary(BinarySpec(name=f"lint-{style}-{seed}",
                                      style=STYLES[style],
                                      function_count=8, seed=seed))
    report = perfect_report(case)
    assert error_count(report) == 0, \
        f"{case.name}: {[d.to_dict() for d in report.errors]}"
