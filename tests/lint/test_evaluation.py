"""Experiment L1 plumbing: perfect claims, error injection, measurement."""

from repro.lint.evaluation import (MIN_FLIP_BYTES, inject_errors,
                                   measure_case, perfect_result, pool)


class TestPerfectResult:
    def test_matches_ground_truth_exactly(self, msvc_case):
        truth = msvc_case.truth
        result = perfect_result(truth)
        assert set(result.instructions) == set(truth.instruction_starts)
        assert result.function_entries == set(truth.function_entries)
        assert result.data_regions == truth.data_regions()
        # Claimed lengths tile each instruction without crossing starts.
        starts = sorted(result.instructions)
        for offset, following in zip(starts, starts[1:]):
            assert offset + result.instructions[offset] <= following


class TestInjectErrors:
    def test_injection_invariants(self, msvc_case):
        perfect = perfect_result(msvc_case.truth)
        corrupted, injected = inject_errors(msvc_case, perfect,
                                            flips=12, seed=1)
        assert 0 < len(injected) <= 12
        claimed = set()
        for flip in injected:
            assert flip.kind in ("code-to-data", "data-to-code")
            assert flip.end - flip.start >= MIN_FLIP_BYTES
            span = set(range(flip.start, flip.end))
            assert not span & claimed      # flips never overlap
            claimed |= span
        assert corrupted.tool == "ground-truth+injected"
        assert corrupted.instructions != perfect.instructions

    def test_deterministic_for_fixed_seed(self, msvc_case):
        perfect = perfect_result(msvc_case.truth)
        first = inject_errors(msvc_case, perfect, flips=8, seed=3)
        second = inject_errors(msvc_case, perfect, flips=8, seed=3)
        assert first[1] == second[1]
        assert first[0].instructions == second[0].instructions


class TestMeasureCase:
    def test_meets_detection_bar(self, msvc_case):
        accuracy = measure_case(msvc_case, flips=12, seed=1)
        assert accuracy.perfect_errors == 0      # sound on perfect output
        assert accuracy.injected > 0
        assert accuracy.recall >= 0.7            # acceptance bar
        assert 0.0 <= accuracy.precision <= 1.0

    def test_pool_sums_counts(self, msvc_case):
        one = measure_case(msvc_case, flips=6, seed=0)
        combined = pool([one, one])
        assert combined.injected == 2 * one.injected
        assert combined.detected == 2 * one.detected
        assert combined.error_diagnostics == 2 * one.error_diagnostics
        assert combined.recall == one.recall
