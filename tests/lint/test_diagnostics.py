"""Diagnostic and report datamodel behavior."""

import json

import pytest

from repro.lint import Diagnostic, LintReport, Severity


def diag(rule="instruction-overlap", severity=Severity.ERROR,
         start=0, end=4, message="m", suggestion=None):
    return Diagnostic(rule=rule, severity=severity, start=start, end=end,
                      message=message, suggestion=suggestion)


class TestSeverity:
    def test_parse_accepts_any_case(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("Warning") is Severity.WARNING
        assert Severity.parse("INFO") is Severity.INFO

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")

    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR


class TestDiagnosticOverlaps:
    def test_overlap_is_half_open(self):
        d = diag(start=4, end=8)
        assert d.overlaps(7, 12)
        assert d.overlaps(0, 5)
        assert not d.overlaps(8, 12)   # touching at end: no overlap
        assert not d.overlaps(0, 4)    # touching at start: no overlap


class TestLintReport:
    def build(self):
        report = LintReport(tool="test")
        report.extend([
            diag(rule="padding-as-data", severity=Severity.INFO,
                 start=30, end=40),
            diag(rule="orphan-code", severity=Severity.WARNING,
                 start=20, end=28),
            diag(rule="string-as-code", severity=Severity.ERROR,
                 start=10, end=18, suggestion="data"),
            diag(rule="instruction-overlap", severity=Severity.ERROR,
                 start=2, end=5),
        ])
        report.rules_run = ["instruction-overlap", "orphan-code",
                            "string-as-code", "padding-as-data"]
        return report

    def test_counts_and_filters(self):
        report = self.build()
        assert report.counts() == {"error": 2, "warning": 1, "info": 1}
        assert len(report.at_least(Severity.WARNING)) == 3
        assert [d.rule for d in report.errors] == \
            ["string-as-code", "instruction-overlap"]
        assert report.max_severity is Severity.ERROR
        assert LintReport(tool="empty").max_severity is None

    def test_sorted_is_severity_then_address(self):
        ordered = self.build().sorted()
        assert [(d.severity, d.start) for d in ordered] == [
            (Severity.ERROR, 2), (Severity.ERROR, 10),
            (Severity.WARNING, 20), (Severity.INFO, 30)]

    def test_json_roundtrip(self):
        report = self.build()
        raw = json.loads(report.to_json())
        assert set(raw) == {"tool", "rules_run", "counts", "diagnostics"}
        restored = LintReport.from_json(report.to_json())
        assert restored.tool == report.tool
        assert restored.rules_run == report.rules_run
        assert sorted(restored.diagnostics, key=lambda d: d.start) == \
            sorted(report.diagnostics, key=lambda d: d.start)

    def test_render_text_summary_line(self):
        text = self.build().render_text()
        assert text.splitlines()[-1] == \
            "4 diagnostics (2 errors, 1 warnings, 1 info)"
        assert "[suggest: data]" in text
