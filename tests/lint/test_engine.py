"""Lint driver behavior: input forms, selection plumbing, registries."""

import pytest

from repro.lint import (DEFAULT_REGISTRY, Diagnostic, LintConfig, Severity,
                        lint_disassembly)
from repro.lint.registry import RuleRegistry
from repro.result import DisassemblyResult
from repro.superset import Superset

#: A nop falling through into unclaimed int3 padding, then a stray
#: claimed instruction: produces warnings from several built-in rules.
TEXT = bytes([0x90]) + bytes([0xCC] * 6) + bytes([0x90])
CLAIM = DisassemblyResult(tool="test", instructions={0: 1, 7: 1},
                          data_regions=[], function_entries=set())


class TestInputForms:
    def test_bytes_and_superset_agree(self):
        from_bytes = lint_disassembly(CLAIM, TEXT)
        from_superset = lint_disassembly(CLAIM, Superset.build(TEXT))
        assert from_bytes.rules_run == from_superset.rules_run
        assert from_bytes.diagnostics == from_superset.diagnostics

    def test_report_carries_tool_name(self):
        assert lint_disassembly(CLAIM, TEXT).tool == "test"


class TestConfigPlumbing:
    def test_default_runs_every_registered_rule(self):
        report = lint_disassembly(CLAIM, TEXT)
        assert report.rules_run == DEFAULT_REGISTRY.ids()

    def test_enabled_restricts_rules_run(self):
        config = LintConfig(enabled=("orphan-code", "padding-as-code"))
        report = lint_disassembly(CLAIM, TEXT, config=config)
        assert set(report.rules_run) == {"orphan-code", "padding-as-code"}

    def test_disabled_rule_never_fires(self):
        noisy = lint_disassembly(CLAIM, TEXT)
        assert any(d.rule == "fallthrough-unclaimed" for d in noisy)
        config = LintConfig(disabled=("fallthrough-unclaimed",))
        quiet = lint_disassembly(CLAIM, TEXT, config=config)
        assert not any(d.rule == "fallthrough-unclaimed" for d in quiet)
        assert "fallthrough-unclaimed" not in quiet.rules_run

    def test_severity_override_applies(self):
        config = LintConfig(
            enabled=("fallthrough-unclaimed",),
            severity_overrides={"fallthrough-unclaimed": Severity.ERROR})
        report = lint_disassembly(CLAIM, TEXT, config=config)
        assert report.diagnostics
        assert all(d.severity is Severity.ERROR for d in report)

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="unknown lint rule"):
            lint_disassembly(CLAIM, TEXT,
                             config=LintConfig(enabled=("no-such-rule",)))


class TestCustomRegistry:
    def test_custom_registry_replaces_builtins(self):
        registry = RuleRegistry()

        @registry.register("always-fires", Severity.INFO, "test rule")
        def check(context, severity):
            yield Diagnostic(rule="always-fires", severity=severity,
                             start=0, end=len(context.text),
                             message="fired")

        report = lint_disassembly(CLAIM, TEXT, registry=registry)
        assert report.rules_run == ["always-fires"]
        assert [d.rule for d in report] == ["always-fires"]
