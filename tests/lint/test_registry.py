"""Rule registration, selection, and the built-in battery's metadata."""

import pytest

from repro.lint import DEFAULT_REGISTRY, Severity
from repro.lint.registry import RuleRegistry

EXPECTED_IDS = [
    "undecodable-instruction", "instruction-overlap", "code-data-overlap",
    "function-entry-not-code", "branch-into-instruction", "branch-into-data",
    "dangling-fallthrough", "fallthrough-unclaimed", "call-target-garbage",
    "call-target-non-prologue", "jump-table-target-misaligned",
    "string-as-code", "pointer-run-as-code", "orphan-code",
    "padding-as-code", "padding-as-data", "hint-disagreement",
    "rule-disagreement",
]


def sample_registry():
    registry = RuleRegistry()

    @registry.register("a", Severity.ERROR, "first")
    def check_a(context, severity):
        return iter(())

    @registry.register("b", Severity.WARNING, "second")
    def check_b(context, severity):
        return iter(())

    return registry


class TestRegistration:
    def test_duplicate_id_rejected(self):
        registry = sample_registry()
        with pytest.raises(ValueError, match="duplicate"):
            registry.register("a", Severity.INFO, "again")(lambda c, s: iter(()))

    def test_get_unknown_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown lint rule"):
            sample_registry().get("nope")

    def test_container_protocol(self):
        registry = sample_registry()
        assert "a" in registry and "nope" not in registry
        assert len(registry) == 2
        assert [rule.id for rule in registry] == ["a", "b"]


class TestSelect:
    def test_default_is_all_in_registration_order(self):
        assert [r.id for r in sample_registry().select()] == ["a", "b"]

    def test_enabled_restricts(self):
        assert [r.id for r in sample_registry().select(enabled=["b"])] == ["b"]

    def test_disabled_removes(self):
        assert [r.id for r in sample_registry().select(disabled=["a"])] == ["b"]

    def test_unknown_ids_raise(self):
        registry = sample_registry()
        with pytest.raises(KeyError):
            registry.select(enabled=["a", "zzz"])
        with pytest.raises(KeyError):
            registry.select(disabled=["zzz"])
        with pytest.raises(KeyError):
            registry.select(severity_overrides={"zzz": Severity.INFO})

    def test_severity_override_rebinds_without_mutating(self):
        registry = sample_registry()
        selected = registry.select(severity_overrides={"a": Severity.INFO})
        assert selected[0].severity is Severity.INFO
        assert registry.get("a").severity is Severity.ERROR


class TestBuiltinBattery:
    def test_all_rules_registered_in_order(self):
        assert DEFAULT_REGISTRY.ids() == EXPECTED_IDS

    def test_every_rule_has_description(self):
        for rule in DEFAULT_REGISTRY:
            assert rule.description
