"""Diagnostics-as-evidence conversion and the disassembler feedback loop."""

from repro.core.config import DisassemblerConfig
from repro.core.disassembler import Disassembler
from repro.core.evidence import Priority
from repro.eval.metrics import evaluate
from repro.lint import Diagnostic, LintReport, Severity
from repro.lint.feedback import diagnostics_to_evidence


def report_with(*diagnostics):
    report = LintReport(tool="test")
    report.extend(diagnostics)
    return report


def diag(rule, severity=Severity.ERROR, start=16, end=32, suggestion=None):
    return Diagnostic(rule=rule, severity=severity, start=start, end=end,
                      message="m", suggestion=suggestion)


class TestConversion:
    def test_data_shape_rule_becomes_data_span_evidence(self):
        report = report_with(diag("string-as-code", suggestion="data"))
        [evidence] = diagnostics_to_evidence(report)
        assert evidence.kind == "data"
        assert (evidence.offset, evidence.end) == (16, 32)
        assert evidence.priority is Priority.STRUCTURAL
        assert evidence.source == "lint:string-as-code"

    def test_code_target_rule_becomes_point_evidence(self):
        report = report_with(diag("branch-into-data", suggestion="code"))
        [evidence] = diagnostics_to_evidence(report)
        assert evidence.kind == "code"
        assert (evidence.offset, evidence.end) == (16, 16)
        assert evidence.priority is Priority.STRUCTURAL

    def test_rules_without_unique_fix_produce_nothing(self):
        report = report_with(diag("dangling-fallthrough"),
                             diag("instruction-overlap"),
                             diag("code-data-overlap"))
        assert diagnostics_to_evidence(report) == []

    def test_min_severity_filters(self):
        report = report_with(diag("padding-as-code",
                                  severity=Severity.WARNING,
                                  suggestion="data"))
        assert len(diagnostics_to_evidence(report)) == 1
        assert diagnostics_to_evidence(
            report, min_severity=Severity.ERROR) == []

    def test_suggestion_must_match_rule_family(self):
        # A data-shape rule without its expected suggestion is ignored.
        report = report_with(diag("string-as-code", suggestion=None))
        assert diagnostics_to_evidence(report) == []


class TestDisassemblerIntegration:
    def test_feedback_round_does_not_regress(self, models, msvc_case):
        base = Disassembler(models=models).disassemble(msvc_case)
        config = DisassemblerConfig(use_lint_feedback=True)
        rich = Disassembler(models=models,
                            config=config).disassemble_rich(msvc_case)
        assert any(line.startswith("lint-feedback:") for line in rich.log)
        base_eval = evaluate(base, msvc_case.truth)
        fb_eval = evaluate(rich.result, msvc_case.truth)
        assert fb_eval.bytes.total_errors <= base_eval.bytes.total_errors
        assert fb_eval.instructions.f1 >= base_eval.instructions.f1 - 1e-9

    def test_flag_off_is_the_default_and_identical(self, models, msvc_case):
        default = Disassembler(models=models).disassemble_rich(msvc_case)
        assert not any(line.startswith("lint-feedback:")
                       for line in default.log)
        assert DisassemblerConfig().use_lint_feedback is False
