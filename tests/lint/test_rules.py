"""One focused test per built-in lint rule.

Each test hand-builds a tiny text section (via the encoder or raw
bytes), a deliberately flawed claim over it, and runs exactly one rule,
so a failure pinpoints the rule rather than the battery.
"""

import struct

from repro.lint import LintConfig, Severity, lint_disassembly
from repro.result import DisassemblyResult
from repro.superset import Superset

NOP, RET, INT3, BAD = 0x90, 0xC3, 0xCC, 0x06


def claim(text, instructions=None, data=None, entries=None):
    return DisassemblyResult(tool="test",
                             instructions=dict(instructions or {}),
                             data_regions=list(data or []),
                             function_entries=set(entries or ()))


def run_rule(rule_id, text, **kwargs):
    report = lint_disassembly(claim(text, **kwargs), Superset.build(text),
                              config=LintConfig(enabled=(rule_id,)))
    assert report.rules_run == [rule_id]
    return list(report)


def jmp_to(target, site=0):
    return bytes([0xE9]) + struct.pack("<i", target - site - 5)


def call_to(target, site=0):
    return bytes([0xE8]) + struct.pack("<i", target - site - 5)


def pack8(value):
    return struct.pack("<Q", value)


class TestUndecodableInstruction:
    def test_flags_undecodable_start(self):
        text = bytes([RET, BAD, BAD, BAD])
        diags = run_rule("undecodable-instruction", text,
                         instructions={1: 1})
        assert len(diags) == 1
        assert diags[0].severity == Severity.ERROR
        assert diags[0].suggestion == "data"

    def test_flags_wrong_length(self):
        text = bytes([RET, NOP, NOP, NOP])
        diags = run_rule("undecodable-instruction", text,
                         instructions={0: 3})
        assert len(diags) == 1
        assert "claims 3" in diags[0].message

    def test_silent_on_correct_claim(self):
        text = bytes([RET, NOP])
        assert run_rule("undecodable-instruction", text,
                        instructions={0: 1, 1: 1}) == []


class TestInstructionOverlap:
    def test_flags_overlapping_claims(self):
        text = bytes([NOP] * 8)
        diags = run_rule("instruction-overlap", text,
                         instructions={0: 3, 1: 3})
        assert len(diags) == 1
        assert diags[0].start == 1

    def test_silent_on_adjacent_claims(self):
        text = bytes([NOP] * 8)
        assert run_rule("instruction-overlap", text,
                        instructions={0: 3, 3: 3}) == []


class TestCodeDataOverlap:
    def test_flags_shared_bytes(self):
        text = bytes([NOP] * 8)
        diags = run_rule("code-data-overlap", text,
                         instructions={0: 2}, data=[(1, 4)])
        assert len(diags) == 1
        assert (diags[0].start, diags[0].end) == (1, 2)

    def test_silent_on_disjoint_claims(self):
        text = bytes([NOP] * 8)
        assert run_rule("code-data-overlap", text,
                        instructions={0: 2}, data=[(2, 4)]) == []


class TestFunctionEntryNotCode:
    def test_flags_entry_off_instruction(self):
        text = bytes([NOP] * 4)
        diags = run_rule("function-entry-not-code", text,
                         instructions={0: 1}, entries={2})
        assert len(diags) == 1
        assert diags[0].start == 2
        assert diags[0].suggestion == "code"

    def test_silent_on_accepted_entry(self):
        text = bytes([NOP] * 4)
        assert run_rule("function-entry-not-code", text,
                        instructions={0: 1}, entries={0}) == []


class TestBranchIntoInstruction:
    def test_flags_target_inside_instruction(self):
        # jmp targets offset 6, the middle of the 7-byte mov at 5.
        mov = bytes([0x48, 0xC7, 0xC0, 0x44, 0x33, 0x22, 0x11])
        text = jmp_to(6) + mov
        diags = run_rule("branch-into-instruction", text,
                         instructions={0: 5, 5: 7})
        assert len(diags) == 1
        assert diags[0].start == 6

    def test_silent_on_boundary_target(self):
        mov = bytes([0x48, 0xC7, 0xC0, 0x44, 0x33, 0x22, 0x11])
        text = jmp_to(5) + mov
        assert run_rule("branch-into-instruction", text,
                        instructions={0: 5, 5: 7}) == []


class TestBranchIntoData:
    def test_flags_target_in_data_region(self):
        text = jmp_to(8) + bytes([NOP] * 11)
        diags = run_rule("branch-into-data", text,
                         instructions={0: 5}, data=[(8, 16)])
        assert len(diags) == 1
        assert diags[0].start == 8
        assert diags[0].suggestion == "code"


class TestDanglingFallthrough:
    def test_flags_fallthrough_into_data(self):
        text = bytes([NOP] * 8)
        diags = run_rule("dangling-fallthrough", text,
                         instructions={0: 1}, data=[(1, 8)])
        assert len(diags) == 1
        assert "data" in diags[0].message

    def test_call_before_data_is_exempt(self):
        # A noreturn callee legitimately leaves data after the call.
        text = call_to(16) + bytes([0] * 11) + bytes([RET])
        assert run_rule("dangling-fallthrough", text,
                        instructions={0: 5, 16: 1}, data=[(5, 16)]) == []

    def test_flags_fallthrough_off_section_end(self):
        text = bytes([NOP])
        diags = run_rule("dangling-fallthrough", text,
                         instructions={0: 1})
        assert len(diags) == 1
        assert "end" in diags[0].message


class TestFallthroughUnclaimed:
    def test_flags_fallthrough_into_unclaimed(self):
        text = bytes([NOP] * 4)
        diags = run_rule("fallthrough-unclaimed", text,
                         instructions={0: 1})
        assert len(diags) == 1
        assert diags[0].severity == Severity.WARNING


class TestCallTargetGarbage:
    def test_flags_undecodable_target(self):
        text = call_to(8) + bytes([NOP] * 3) + bytes([BAD] * 4)
        diags = run_rule("call-target-garbage", text,
                         instructions={0: 5})
        assert len(diags) == 1
        assert diags[0].start == 8

    def test_flags_chain_hitting_garbage(self):
        text = call_to(8) + bytes([NOP] * 3) + bytes([NOP, BAD, BAD, BAD])
        diags = run_rule("call-target-garbage", text,
                         instructions={0: 5})
        assert len(diags) == 1
        assert "chain" in diags[0].message

    def test_silent_on_plausible_target(self):
        text = call_to(8) + bytes([NOP] * 3) + bytes([NOP] * 3 + [RET])
        assert run_rule("call-target-garbage", text,
                        instructions={0: 5}) == []


class TestCallTargetNonPrologue:
    def test_flags_non_prologue_target(self):
        text = call_to(8) + bytes([NOP] * 3) + bytes([NOP] * 7 + [RET])
        diags = run_rule("call-target-non-prologue", text,
                         instructions={0: 5})
        assert len(diags) == 1
        assert diags[0].severity == Severity.WARNING

    def test_silent_on_prologue_target(self):
        # push rbp; mov rbp, rsp -- the canonical opening.
        prologue = bytes([0x55, 0x48, 0x89, 0xE5, RET])
        text = call_to(8) + bytes([NOP] * 3) + prologue
        assert run_rule("call-target-non-prologue", text,
                        instructions={0: 5}) == []


class TestJumpTableTargetMisaligned:
    def test_flags_entry_missing_accepted_start(self):
        # Entries target offsets 0 and 2 (accepted) and 5 (not).
        text = (bytes([NOP] * 8) + pack8(0) + pack8(5) + pack8(2)
                + bytes([0xFF] * 8))
        diags = run_rule("jump-table-target-misaligned", text,
                         instructions={0: 1, 1: 1, 2: 1}, data=[(8, 32)])
        assert len(diags) == 1
        assert (diags[0].start, diags[0].end) == (16, 24)

    def test_trailing_bad_entries_are_trimmed(self):
        # The detector over-extends into neighboring plausible bytes;
        # entries after the last code-targeting one are not reported.
        text = (bytes([NOP] * 8) + pack8(0) + pack8(2) + pack8(5)
                + bytes([0xFF] * 8))
        assert run_rule("jump-table-target-misaligned", text,
                        instructions={0: 1, 1: 1, 2: 1},
                        data=[(8, 32)]) == []


class TestStringAsCode:
    TEXT = b"HELLO, WORLD\x00" + bytes([NOP] * 3)

    def test_flags_string_claimed_as_code(self):
        diags = run_rule("string-as-code", self.TEXT,
                         instructions={0: 13})
        assert len(diags) == 1
        assert diags[0].suggestion == "data"

    def test_silent_when_string_is_data(self):
        assert run_rule("string-as-code", self.TEXT,
                        data=[(0, 13)]) == []


class TestPointerRunAsCode:
    TEXT = (bytes([NOP] * 8) + pack8(0) + pack8(1) + pack8(2)
            + bytes([0xFF] * 8))

    def test_flags_pointer_run_claimed_as_code(self):
        diags = run_rule("pointer-run-as-code", self.TEXT,
                         instructions={8: 24})
        assert len(diags) == 1
        assert (diags[0].start, diags[0].end) == (8, 32)
        assert diags[0].suggestion == "data"

    def test_silent_when_run_is_data(self):
        assert run_rule("pointer-run-as-code", self.TEXT,
                        data=[(8, 32)]) == []


class TestOrphanCode:
    TEXT = bytes([RET]) + bytes([INT3] * 15) + bytes([NOP, RET])

    def test_flags_unreferenced_block(self):
        diags = run_rule("orphan-code", self.TEXT,
                         instructions={0: 1, 16: 1, 17: 1})
        assert len(diags) == 1
        assert (diags[0].start, diags[0].end) == (16, 18)
        assert diags[0].suggestion == "data"

    def test_claimed_entry_counts_as_reference(self):
        assert run_rule("orphan-code", self.TEXT,
                        instructions={0: 1, 16: 1, 17: 1},
                        entries={16}) == []


class TestPaddingAsCode:
    def test_flags_int3_run_accepted_as_code(self):
        text = bytes([RET]) + bytes([INT3] * 6) + bytes([NOP])
        diags = run_rule("padding-as-code", text,
                         instructions={i: 1 for i in range(7)})
        assert len(diags) == 1
        assert diags[0].suggestion == "data"

    def test_silent_when_padding_unclaimed(self):
        text = bytes([RET]) + bytes([INT3] * 6) + bytes([NOP])
        assert run_rule("padding-as-code", text,
                        instructions={0: 1}) == []


class TestPaddingAsData:
    def test_reports_padding_claimed_as_data(self):
        text = bytes([RET]) + bytes([0] * 10) + bytes([NOP])
        diags = run_rule("padding-as-data", text,
                         instructions={0: 1}, data=[(1, 11)])
        assert len(diags) == 1
        assert diags[0].severity == Severity.INFO


class TestRuleDisagreement:
    @staticmethod
    def run(text, facts, **kwargs):
        from repro.lint import LintConfig, lint_disassembly
        from repro.superset import Superset
        report = lint_disassembly(claim(text, **kwargs),
                                  Superset.build(text),
                                  config=LintConfig(
                                      enabled=("rule-disagreement",)),
                                  facts=facts)
        return list(report)

    @staticmethod
    def export(*facts):
        from repro.core.engine.facts import FactExport
        return FactExport(sorted(facts, key=lambda f: (f.start, f.end)))

    def test_flags_equal_priority_conflict(self):
        from repro.core.engine.facts import RegionFact
        from repro.core.evidence import Priority
        text = bytes([NOP] * 8)
        facts = self.export(
            RegionFact(0, 8, "data", Priority.SOFT, "gap", "gap-seal"),
            RegionFact(0, 8, "code", Priority.SOFT, "realign", "realign"))
        diags = self.run(text, facts, instructions={o: 1 for o in range(8)})
        assert len(diags) == 1
        assert diags[0].severity == Severity.INFO
        assert diags[0].suggestion == "code"
        assert "gap-seal" in diags[0].message
        assert "realign" in diags[0].message

    def test_anchors_to_the_overlap(self):
        from repro.core.engine.facts import RegionFact
        from repro.core.evidence import Priority
        text = bytes([NOP] * 16)
        facts = self.export(
            RegionFact(0, 12, "code", Priority.STRUCTURAL, "trace", "trace"),
            RegionFact(8, 16, "data", Priority.SOFT, "gap", "gap-seal"))
        diags = self.run(text, facts,
                         instructions={o: 1 for o in range(8)},
                         data=[(8, 16)])
        assert len(diags) == 1
        assert (diags[0].start, diags[0].end) == (8, 12)

    def test_silent_on_priority_lattice_override(self):
        from repro.core.engine.facts import RegionFact
        from repro.core.evidence import Priority
        text = bytes([NOP] * 8)
        facts = self.export(
            RegionFact(0, 8, "data", Priority.SOFT, "gap", "gap-seal"),
            RegionFact(0, 8, "code", Priority.ANCHOR, "entry", "trace"))
        assert not self.run(text, facts,
                            instructions={o: 1 for o in range(8)})

    def test_silent_without_facts(self):
        text = bytes([NOP] * 8)
        assert not self.run(text, None,
                            instructions={o: 1 for o in range(8)})
