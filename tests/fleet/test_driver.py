"""The fleet driver: checkpoints, resume, pools, invariance.

The acceptance property under test throughout: the trend document is
byte-identical no matter how the run was scheduled -- serial or pooled,
any shard size, interrupted and resumed, or re-aggregated later.
"""

from __future__ import annotations

import json

import pytest

from repro.fleet import FleetConfig, Manifest, run_fleet
from repro.fleet.driver import (_shard_path, detect_shard_size,
                                load_run_reports, pin_manifest)


@pytest.fixture(scope="module")
def reference(small_manifest, models, tmp_path_factory):
    """One serial run to compare every other schedule against."""
    rundir = tmp_path_factory.mktemp("fleet-ref")
    run_fleet(small_manifest, rundir, FleetConfig(shard_size=2))
    return (rundir / "trend.json").read_text()


def test_run_writes_trend_and_checkpoints(small_manifest, models,
                                          tmp_path):
    trend = run_fleet(small_manifest, tmp_path, FleetConfig(shard_size=3))
    assert (tmp_path / "trend.json").exists()
    assert (tmp_path / "manifest.json").exists()
    shards = sorted((tmp_path / "shards").glob("shard-*.json"))
    assert len(shards) == 2                     # 3 + 1 items
    assert trend["binaries"]["ok"] == 4


def test_shard_size_does_not_change_the_trend(small_manifest, models,
                                              tmp_path, reference):
    run_fleet(small_manifest, tmp_path, FleetConfig(shard_size=1))
    assert (tmp_path / "trend.json").read_text() == reference


def test_thread_pool_does_not_change_the_trend(small_manifest, models,
                                               tmp_path, reference,
                                               monkeypatch):
    # Exercise the pooled collection path without process-fork cost by
    # running the in-process analysis on a thread pool.
    import repro.fleet.driver as driver
    from concurrent.futures import ThreadPoolExecutor
    monkeypatch.setattr(driver, "_make_pool",
                        lambda config, workers: ThreadPoolExecutor(workers))
    run_fleet(small_manifest, tmp_path,
              FleetConfig(jobs=3, shard_size=2))
    assert (tmp_path / "trend.json").read_text() == reference


def test_resume_skips_checkpointed_shards(small_manifest, models,
                                          tmp_path, reference):
    run_fleet(small_manifest, tmp_path, FleetConfig(shard_size=2))
    # Simulate a kill mid-run: drop the second shard and the trend.
    _shard_path(tmp_path, 1).unlink()
    (tmp_path / "trend.json").unlink()
    # Poison the surviving checkpoint's mtime-invisible content to prove
    # it is *reused*, not recomputed: inject a recognizable failure.
    path = _shard_path(tmp_path, 0)
    raw = json.loads(path.read_text())
    raw["reports"][0]["status"] = "failed"
    raw["reports"][0]["error"] = "sentinel: loaded from checkpoint"
    raw["reports"][0].pop("tools", None)
    raw["reports"][0].pop("diff", None)
    path.write_text(json.dumps(raw))

    trend = run_fleet(small_manifest, tmp_path, FleetConfig(shard_size=2))
    assert trend["binaries"]["failed"] == 1
    assert "sentinel" in trend["failures"][0]["error"]


def test_resume_after_torn_checkpoint(small_manifest, models, tmp_path,
                                      reference):
    run_fleet(small_manifest, tmp_path, FleetConfig(shard_size=2))
    # A kill -9 mid-write leaves a torn file; resume must recompute it.
    _shard_path(tmp_path, 1).write_text('{"schema": "repro-fleet-shard')
    (tmp_path / "trend.json").unlink()
    run_fleet(small_manifest, tmp_path, FleetConfig(shard_size=2))
    assert (tmp_path / "trend.json").read_text() == reference


def test_checkpoint_with_wrong_ids_is_recomputed(small_manifest, models,
                                                 tmp_path, reference):
    run_fleet(small_manifest, tmp_path, FleetConfig(shard_size=2))
    path = _shard_path(tmp_path, 0)
    raw = json.loads(path.read_text())
    raw["reports"] = list(reversed(raw["reports"]))   # id order mismatch
    path.write_text(json.dumps(raw))
    (tmp_path / "trend.json").unlink()
    run_fleet(small_manifest, tmp_path, FleetConfig(shard_size=2))
    assert (tmp_path / "trend.json").read_text() == reference


def test_broken_pool_falls_back_to_coordinator(small_manifest, models,
                                               tmp_path, reference,
                                               monkeypatch):
    import repro.fleet.driver as driver

    class _DoomedFuture:
        def result(self):
            raise RuntimeError("worker exploded")

    class _DoomedPool:
        def submit(self, fn, *args):
            return _DoomedFuture()

        def shutdown(self, wait=True, cancel_futures=False):
            pass

    monkeypatch.setattr(driver, "_make_pool",
                        lambda config, workers: _DoomedPool())
    trend = run_fleet(small_manifest, tmp_path,
                      FleetConfig(jobs=2, shard_size=2))
    assert trend["binaries"]["ok"] == 4       # all recomputed in-process
    assert (tmp_path / "trend.json").read_text() == reference


def test_pin_manifest_rejects_a_different_corpus(small_manifest,
                                                 tmp_path):
    pin_manifest(tmp_path, small_manifest)
    other = Manifest(small_manifest.items[:2])
    with pytest.raises(ValueError, match="different manifest"):
        pin_manifest(tmp_path, other)


def test_empty_manifest_is_an_error(tmp_path):
    with pytest.raises(ValueError, match="empty"):
        run_fleet(Manifest([]), tmp_path, FleetConfig())


def test_detect_shard_size(small_manifest, models, tmp_path):
    assert detect_shard_size(tmp_path) is None
    run_fleet(small_manifest, tmp_path, FleetConfig(shard_size=3))
    assert detect_shard_size(tmp_path) == 3


def test_load_run_reports_partial_view(small_manifest, models, tmp_path):
    run_fleet(small_manifest, tmp_path, FleetConfig(shard_size=2))
    _shard_path(tmp_path, 1).unlink()
    manifest, reports, missing = load_run_reports(tmp_path)
    assert len(manifest) == 4
    assert len(reports) == 2
    assert missing == 1


def test_config_validation():
    with pytest.raises(ValueError):
        FleetConfig(via="carrier-pigeon")
    with pytest.raises(ValueError):
        FleetConfig(via="serve")              # server required
