"""CLI-level tests: evalfleet plan/run/resume/report/diff and the
`repro generate` manifest round trip."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fleet import Manifest
from repro.fleet.schema import validate_file


@pytest.fixture(scope="module")
def plan_path(tmp_path_factory):
    directory = tmp_path_factory.mktemp("fleet-cli")
    path = directory / "manifest.json"
    code = main(["evalfleet", "plan", str(path), "--style", "msvc-like",
                 "--functions", "4", "--seed-range", "0:2"])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def finished_run(plan_path, models, tmp_path_factory):
    rundir = tmp_path_factory.mktemp("fleet-cli-run")
    code = main(["evalfleet", "run", str(plan_path),
                 "--rundir", str(rundir), "--shard-size", "1",
                 "--check-separation"])
    assert code == 0
    return rundir


class TestPlan:
    def test_writes_a_valid_manifest(self, plan_path, capsys):
        assert validate_file(plan_path)["kind"] == "manifest"
        assert len(Manifest.load(plan_path)) == 2

    def test_default_grid_covers_all_styles(self, tmp_path, capsys):
        path = tmp_path / "all.json"
        assert main(["evalfleet", "plan", str(path),
                     "--seed-range", "0:1"]) == 0
        styles = {item.style for item in Manifest.load(path)}
        assert styles == {"msvc-like", "gcc-like", "clang-like"}

    def test_limit(self, tmp_path, capsys):
        path = tmp_path / "lim.json"
        assert main(["evalfleet", "plan", str(path), "--limit", "3"]) == 0
        assert len(Manifest.load(path)) == 3

    def test_bad_seed_range_is_a_usage_error(self, tmp_path, capsys):
        assert main(["evalfleet", "plan", str(tmp_path / "x.json"),
                     "--seed-range", "5:2"]) == 2

    def test_merges_an_existing_manifest(self, plan_path, tmp_path,
                                         capsys):
        path = tmp_path / "merged.json"
        assert main(["evalfleet", "plan", str(path),
                     "--manifest", str(plan_path)]) == 0
        assert Manifest.load(path).to_json() == \
            Manifest.load(plan_path).to_json()


class TestGenerateManifest:
    def test_seed_range_and_manifest_round_trip(self, tmp_path, capsys):
        prefix = tmp_path / "demo"
        manifest_path = tmp_path / "gen.json"
        code = main(["generate", str(prefix), "--functions", "4",
                     "--style", "gcc-like", "--seed-range", "2:5",
                     "--manifest", str(manifest_path)])
        assert code == 0
        for seed in (2, 3, 4):
            assert (tmp_path / f"demo-s{seed:06d}.bin").exists()
        items = list(Manifest.load(manifest_path))
        assert [item.seed for item in items] == [2, 3, 4]
        assert all(item.kind == "synth" and item.style == "gcc-like"
                   for item in items)
        # ... and the manifest feeds straight back into `evalfleet plan`.
        merged = tmp_path / "merged.json"
        assert main(["evalfleet", "plan", str(merged),
                     "--manifest", str(manifest_path)]) == 0
        assert len(Manifest.load(merged)) == 3

    def test_single_seed_output_unchanged(self, tmp_path, capsys):
        assert main(["generate", str(tmp_path / "one"),
                     "--functions", "4", "--seed-range", "9"]) == 0
        out = capsys.readouterr().out
        assert "text bytes" in out
        assert (tmp_path / "one.bin").exists()   # no -sNNNNNN suffix

    def test_bad_seed_range(self, tmp_path, capsys):
        assert main(["generate", str(tmp_path / "x"),
                     "--seed-range", "3:1"]) == 2


class TestRunReportDiff:
    def test_run_passes_separation_gate(self, finished_run):
        assert (finished_run / "trend.json").exists()
        assert validate_file(finished_run / "trend.json")["kind"] == \
            "trend"

    def test_report_text(self, finished_run, capsys):
        assert main(["evalfleet", "report", str(finished_run)]) == 0
        out = capsys.readouterr().out
        assert "binaries ok" in out and "error class" in out

    def test_report_json_matches_trend(self, finished_run, capsys):
        assert main(["evalfleet", "report", str(finished_run),
                     "--format", "json"]) == 0
        out = capsys.readouterr().out
        assert out == (finished_run / "trend.json").read_text()

    def test_report_prometheus(self, finished_run, capsys):
        assert main(["evalfleet", "report", str(finished_run),
                     "--format", "prometheus"]) == 0
        assert "repro_fleet_binaries_total" in capsys.readouterr().out

    def test_report_on_empty_rundir(self, tmp_path, capsys):
        assert main(["evalfleet", "report", str(tmp_path)]) == 2

    def test_diff_self_passes(self, finished_run, capsys):
        trend = str(finished_run / "trend.json")
        assert main(["evalfleet", "diff", trend, trend]) == 0
        assert "no taxonomy regression" in capsys.readouterr().out

    def test_diff_flags_regression(self, finished_run, tmp_path,
                                   capsys):
        trend = json.loads((finished_run / "trend.json").read_text())
        tool = trend["tools"]["corrected"]
        tool["taxonomy"]["false-code"]["diagnostics"] += 50
        tool["taxonomy"]["false-code"]["errors"] += 50
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(trend))
        assert main(["evalfleet", "diff", str(worse),
                     str(finished_run / "trend.json")]) == 1
        assert "GATE:" in capsys.readouterr().err

    def test_diff_usage_error(self, tmp_path, capsys):
        assert main(["evalfleet", "diff", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 2

    def test_resume_of_finished_run_recomputes_nothing(self,
                                                       finished_run,
                                                       capsys):
        before = (finished_run / "trend.json").read_text()
        assert main(["evalfleet", "resume",
                     "--rundir", str(finished_run)]) == 0
        out = capsys.readouterr().out
        assert "0 computed" in out
        assert (finished_run / "trend.json").read_text() == before

    def test_run_rejects_missing_manifest(self, tmp_path, capsys):
        assert main(["evalfleet", "run", str(tmp_path / "nope.json"),
                     "--rundir", str(tmp_path / "r")]) == 2

    def test_run_via_serve_requires_server(self, plan_path, tmp_path,
                                           capsys):
        assert main(["evalfleet", "run", str(plan_path),
                     "--rundir", str(tmp_path / "r"),
                     "--via", "serve"]) == 2
