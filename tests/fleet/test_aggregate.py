"""Aggregation: determinism, taxonomy pooling, gating, metrics."""

from __future__ import annotations

import random

import pytest

from repro.fleet import (ALL_CLASSES, CORRECTED, aggregate,
                         check_separation, compare_trends, load_trend,
                         publish_metrics, render_report, trend_json,
                         write_trend)
from repro.fleet.aggregate import TREND_SCHEMA
from repro.fleet.schema import validate_document
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def trend(small_reports):
    return aggregate(small_reports)


def test_trend_shape_validates(trend):
    summary = validate_document(trend)
    assert summary == {"kind": "trend", "binaries": 4, "failed": 0}
    assert trend["schema"] == TREND_SCHEMA


def test_aggregation_is_order_independent(small_reports, trend):
    shuffled = list(small_reports)
    random.Random(42).shuffle(shuffled)
    assert trend_json(aggregate(shuffled)) == trend_json(trend)


def test_duplicate_reports_rejected(small_reports):
    with pytest.raises(ValueError, match="duplicate"):
        aggregate(small_reports + [small_reports[0]])


def test_failed_reports_become_failures(small_reports):
    broken = {"schema": small_reports[0]["schema"], "id": "file/x",
              "status": "failed", "error": "boom", "style": "file"}
    trend = aggregate(small_reports + [broken])
    assert trend["binaries"] == {"total": 5, "ok": 4, "failed": 1}
    assert trend["failures"] == [{"id": "file/x", "error": "boom"}]
    validate_document(trend)


def test_taxonomy_pools_every_class_for_every_tool(trend):
    for per_tool in trend["tools"].values():
        assert set(per_tool["taxonomy"]) == \
            {cls.value for cls in ALL_CLASSES}
        for bucket in per_tool["taxonomy"].values():
            assert 0 <= bucket["errors"] <= bucket["diagnostics"]


def test_gt_rates_are_derived_and_rounded(trend):
    gt = trend["tools"][CORRECTED]["gt"]
    assert gt["scored_bytes"] == gt["code_bytes"] + gt["data_bytes"]
    expected = (gt["false_code"] + gt["missed_code"]) / gt["scored_bytes"]
    assert gt["total_error_rate"] == round(expected, 8)
    assert 0.0 <= gt["instr_f1"] <= 1.0


def test_separation_holds_on_the_small_corpus(trend):
    assert check_separation(trend) == []
    for axes in trend["separation"].values():
        for cell in axes.values():
            assert cell["holds"] is True
            assert cell["corrected"] < cell["baseline"]


def test_separation_reported_when_broken(trend):
    import copy
    broken = copy.deepcopy(trend)
    cell = broken["separation"]["linear-sweep"]["false-code"]
    cell["holds"] = False
    problems = check_separation(broken)
    assert any("linear-sweep" in p and "false-code" in p
               for p in problems)


def test_compare_trends_self_is_clean(trend):
    assert compare_trends(trend, trend) == []


def test_compare_trends_flags_regression(trend):
    import copy
    worse = copy.deepcopy(trend)
    tool = worse["tools"][CORRECTED]
    tool["taxonomy"]["false-code"]["diagnostics"] += 40
    tool["taxonomy"]["false-code"]["errors"] += 40
    tool["gt"]["false_code"] += 10_000
    tool["gt"]["false_code_rate"] += 0.05
    tool["gt"]["total_error_rate"] += 0.05
    problems = compare_trends(worse, trend)
    assert any("taxonomy regression [false-code]" in p for p in problems)
    assert any("ground-truth regression [false-code]" in p
               for p in problems)


def test_compare_trends_flags_failure_rate(trend, small_reports):
    broken = {"schema": small_reports[0]["schema"], "id": "file/x",
              "status": "failed", "error": "boom", "style": "file"}
    worse = aggregate(small_reports + [broken])
    problems = compare_trends(worse, trend)
    assert any("failure rate regressed" in p for p in problems)


def test_load_trend_accepts_bench_wrapper(tmp_path, trend):
    direct = write_trend(tmp_path / "trend.json", trend)
    assert trend_json(load_trend(direct)) == trend_json(trend)
    wrapped = tmp_path / "BENCH_fleet.json"
    import json
    wrapped.write_text(json.dumps({"bench": "fleet", "trend": trend}))
    assert trend_json(load_trend(wrapped)) == trend_json(trend)
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "nope"}')
    with pytest.raises(ValueError):
        load_trend(bad)


def test_publish_metrics_exports_fleet_series(trend):
    registry = MetricsRegistry()
    publish_metrics(trend, registry)
    rendered = registry.render_prometheus()
    assert 'repro_fleet_binaries_total{status="ok"} 4' in rendered
    assert "repro_fleet_taxonomy_errors_total" in rendered
    assert "repro_fleet_gt_error_bytes_total" in rendered
    assert 'repro_fleet_separation_ok{' in rendered


class TestOrderInvarianceProperty:
    """Hypothesis: aggregation is invariant under any reordering --
    the property that makes shard size, worker count, and
    resume-after-kill invisible in the trend bytes."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(permutation=st.permutations(range(4)),
           failures=st.lists(
               st.tuples(st.text(min_size=1, max_size=8,
                                 alphabet="abcdef"),
                         st.text(min_size=1, max_size=12)),
               max_size=3, unique_by=lambda f: f[0]))
    @settings(max_examples=25, deadline=None)
    def test_any_schedule_yields_identical_bytes(self, small_reports,
                                                 permutation, failures):
        synthetic = [{"schema": small_reports[0]["schema"],
                      "id": f"file/{name}", "status": "failed",
                      "error": error, "style": "file"}
                     for name, error in failures]
        canonical = trend_json(aggregate(small_reports + synthetic))
        shuffled = [small_reports[i] for i in permutation] + synthetic
        shuffled.reverse()
        assert trend_json(aggregate(shuffled)) == canonical


def test_render_report_is_human_readable(trend):
    text = render_report(trend)
    assert "fleet: 4/4 binaries ok" in text
    assert "false-code" in text
    assert "separation vs linear-sweep" in text
