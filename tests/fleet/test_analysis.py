"""Per-binary analysis reports: shape, ground truth, quarantine."""

from __future__ import annotations

from repro.fleet import ALL_TOOLS, CORRECTED, BASELINES, analyze_item
from repro.fleet.analysis import REPORT_SCHEMA
from repro.fleet.schema import validate_report


def test_ok_report_shape(small_reports):
    report = small_reports[0]
    assert report["schema"] == REPORT_SCHEMA
    assert report["status"] == "ok"
    assert report["style"] in ("msvc-like", "gcc-like")
    assert set(report["tools"]) == set(ALL_TOOLS)
    for name in ALL_TOOLS:
        per_tool = report["tools"][name]
        assert isinstance(per_tool["lint"], dict)
        assert per_tool["gt"] is not None       # synth items carry labels
        assert per_tool["gt"]["code_bytes"] > 0
    assert set(report["diff"]) == set(BASELINES)
    validate_report(report)


def test_reports_are_deterministic(small_manifest, small_reports):
    again = analyze_item(small_manifest.items[0].to_dict())
    assert again == small_reports[0]


def test_corrected_beats_baselines_on_the_small_corpus(small_reports):
    pooled = {name: 0 for name in ALL_TOOLS}
    for report in small_reports:
        for name in ALL_TOOLS:
            gt = report["tools"][name]["gt"]
            pooled[name] += gt["false_code"] + gt["missed_code"]
    assert pooled[CORRECTED] < pooled["linear-sweep"]
    assert pooled[CORRECTED] < pooled["recursive-descent"]


def test_malformed_file_is_quarantined_not_fatal(tmp_path):
    bogus = tmp_path / "bogus.bin"
    bogus.write_bytes(b"\x7fELF" + b"\x00" * 4)   # truncated ELF header
    report = analyze_item({"kind": "file", "path": str(bogus)})
    assert report["status"] == "failed"
    assert report["error"]
    assert "tools" not in report
    validate_report(report)


def test_missing_file_is_quarantined(tmp_path):
    report = analyze_item({"kind": "file",
                           "path": str(tmp_path / "absent.bin")})
    assert report["status"] == "failed"
    assert "FileNotFoundError" in report["error"]


def test_unreachable_server_is_quarantined():
    report = analyze_item(
        {"kind": "synth", "style": "msvc-like", "function_count": 4,
         "seed": 0},
        via="serve", server="127.0.0.1:1")
    assert report["status"] == "failed"
    assert "TransportError" in report["error"]
