"""The fleet schema validator: accepts the real thing, rejects mutants."""

from __future__ import annotations

import copy
import json

import pytest

from repro.fleet import FleetConfig, aggregate, run_fleet
from repro.fleet.schema import (SchemaError, main, validate_document,
                                validate_file, validate_report)


@pytest.fixture(scope="module")
def rundir(small_manifest, models, tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet-schema")
    run_fleet(small_manifest, path, FleetConfig(shard_size=3))
    return path


def test_real_documents_validate(rundir):
    assert validate_file(rundir / "manifest.json")["kind"] == "manifest"
    assert validate_file(rundir / "trend.json")["kind"] == "trend"
    shard = next((rundir / "shards").glob("shard-*.json"))
    assert validate_file(shard)["kind"] == "shard"


def test_cli_entry_point(rundir, capsys):
    paths = [str(rundir / "manifest.json"), str(rundir / "trend.json")]
    assert main(paths) == 0
    out = capsys.readouterr().out
    assert "ok -- manifest" in out and "ok -- trend" in out
    assert main([]) == 2
    assert main([str(rundir / "does-not-exist.json")]) == 1


def test_unknown_schema_rejected():
    with pytest.raises(SchemaError, match="unknown fleet schema"):
        validate_document({"schema": "repro-fleet-mystery-v9"})
    with pytest.raises(SchemaError):
        validate_document([1, 2, 3])


def test_manifest_mutants_rejected(rundir):
    raw = json.loads((rundir / "manifest.json").read_text())
    dup = copy.deepcopy(raw)
    dup["items"].append(dup["items"][0])
    with pytest.raises(SchemaError, match="duplicate"):
        validate_document(dup)
    empty = copy.deepcopy(raw)
    empty["items"] = []
    with pytest.raises(SchemaError, match="no items"):
        validate_document(empty)
    bad_item = copy.deepcopy(raw)
    bad_item["items"][0] = {"kind": "mystery"}
    with pytest.raises(SchemaError, match="items\\[0\\]"):
        validate_document(bad_item)


def test_report_mutants_rejected(rundir):
    shard = json.loads(next((rundir / "shards")
                            .glob("shard-*.json")).read_text())
    report = shard["reports"][0]
    good = copy.deepcopy(report)
    assert validate_report(good) is good

    missing_tool = copy.deepcopy(report)
    del missing_tool["tools"]["linear-sweep"]
    with pytest.raises(SchemaError, match="lacks tool"):
        validate_report(missing_tool)

    bad_status = copy.deepcopy(report)
    bad_status["status"] = "maybe"
    with pytest.raises(SchemaError, match="status"):
        validate_report(bad_status)

    silent_failure = copy.deepcopy(report)
    silent_failure["status"] = "failed"
    silent_failure["error"] = ""
    with pytest.raises(SchemaError, match="no error message"):
        validate_report(silent_failure)


def test_trend_mutants_rejected(rundir, small_reports, tmp_path):
    trend = aggregate(small_reports)

    arithmetic = copy.deepcopy(trend)
    arithmetic["binaries"]["ok"] += 1
    with pytest.raises(SchemaError, match="!= total"):
        validate_document(arithmetic)

    missing_class = copy.deepcopy(trend)
    del missing_class["tools"]["corrected"]["taxonomy"]["gap"]
    with pytest.raises(SchemaError, match="lacks class"):
        validate_document(missing_class)

    inverted = copy.deepcopy(trend)
    bucket = inverted["tools"]["corrected"]["taxonomy"]["false-code"]
    bucket["errors"] = bucket["diagnostics"] + 1
    with pytest.raises(SchemaError, match="errors exceed"):
        validate_document(inverted)

    bool_count = copy.deepcopy(trend)
    bool_count["binaries"]["ok"] = True
    with pytest.raises(SchemaError, match="must be int"):
        validate_document(bool_count)


def test_validate_file_rejects_non_json(tmp_path):
    path = tmp_path / "torn.json"
    path.write_text('{"schema": ')
    with pytest.raises(SchemaError, match="not JSON"):
        validate_file(path)
