"""Manifests: deterministic planning, serialization, sharding, ingest."""

from __future__ import annotations

import pytest

from repro.fleet.manifest import (FleetItem, Manifest, ingest_directory,
                                  parse_seed_range, plan_grid)
from repro.synth import BinarySpec, MSVC_LIKE, generate_binary


def test_parse_seed_range():
    assert list(parse_seed_range("0:3")) == [0, 1, 2]
    assert list(parse_seed_range("7")) == [7]
    assert list(parse_seed_range("-2:1")) == [-2, -1, 0]
    for bad in ("3:3", "5:2", "a:b", "", "1:2:3"):
        with pytest.raises(ValueError):
            parse_seed_range(bad)


def test_item_ids_are_stable_and_unique():
    item = FleetItem(kind="synth", style="msvc-like", function_count=8,
                     seed=3)
    assert item.id == "synth/msvc-like/fc0008/s000003"
    assert FleetItem(kind="file", path="x/y.bin").id == "file/x/y.bin"


def test_item_validation():
    with pytest.raises(ValueError):
        FleetItem(kind="synth", style="no-such-style", function_count=4)
    with pytest.raises(ValueError):
        FleetItem(kind="synth", style="msvc-like", function_count=1)
    with pytest.raises(ValueError):
        FleetItem(kind="file", path="")
    with pytest.raises(ValueError):
        FleetItem(kind="mystery")


def test_synth_item_spec_regenerates_bit_identically():
    item = FleetItem(kind="synth", style="msvc-like", function_count=4,
                     seed=9)
    once = generate_binary(item.spec())
    twice = generate_binary(item.spec())
    assert once.binary.text.data == twice.binary.text.data


def test_plan_grid_is_deterministic_and_style_major():
    first = plan_grid(["msvc-like", "gcc-like"], [8, 4], range(2))
    second = plan_grid(["gcc-like", "msvc-like"], [4, 8, 8], range(2))
    assert first.to_json() == second.to_json()
    ids = [item.id for item in first]
    assert ids == sorted(ids)  # style-major then size then seed


def test_manifest_rejects_duplicates():
    item = FleetItem(kind="synth", style="msvc-like", function_count=4,
                     seed=0)
    with pytest.raises(ValueError, match="duplicate"):
        Manifest([item, item])


def test_round_trip_through_disk(tmp_path):
    manifest = plan_grid(["msvc-like"], [4], range(3))
    path = manifest.save(tmp_path / "m.json")
    loaded = Manifest.load(path)
    assert loaded.to_json() == manifest.to_json()
    assert [item.id for item in loaded] == [item.id for item in manifest]


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema": "something-else", "items": []}')
    with pytest.raises(ValueError, match="not a fleet manifest"):
        Manifest.load(path)


def test_limit_and_shards():
    manifest = plan_grid(["msvc-like"], [4], range(10))
    assert len(manifest.limit(3)) == 3
    assert manifest.limit(None) is manifest
    assert manifest.limit(99) is manifest
    shards = manifest.shards(4)
    assert [len(s) for s in shards] == [4, 4, 2]
    with pytest.raises(ValueError):
        manifest.shards(0)


def test_ingest_directory_recognizes_containers(tmp_path):
    case = generate_binary(BinarySpec(name="ing", style=MSVC_LIKE,
                                      function_count=4, seed=0))
    case.save(tmp_path)                        # .bin + .gt.json sidecar
    (tmp_path / "notes.txt").write_text("not a binary")
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "copy.bin").write_bytes(case.binary.to_bytes())
    items = ingest_directory(tmp_path)
    paths = [item.path for item in items]
    assert len(items) == 2                     # sidecars and notes skipped
    assert all(item.kind == "file" for item in items)
    assert paths == sorted(paths)
