"""Fixtures for the fleet tests.

Per-binary analysis is the expensive part (full corrected pipeline per
item), so the small corpus and its reports are session-scoped and every
aggregation/determinism test reuses them instead of re-running the
pipeline.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetItem, Manifest, analyze_item


@pytest.fixture(scope="session")
def small_manifest() -> Manifest:
    """Two styles x two seeds of tiny binaries: 4 items."""
    return Manifest([
        FleetItem(kind="synth", style=style, function_count=4, seed=seed)
        for style in ("msvc-like", "gcc-like")
        for seed in (0, 1)
    ])


@pytest.fixture(scope="session")
def small_reports(small_manifest, models) -> list[dict]:
    """The 4 reports of ``small_manifest``, computed once per session."""
    return [analyze_item(item.to_dict()) for item in small_manifest]
