"""The error taxonomy is total over the lint battery -- by construction.

The load-bearing test here is exhaustiveness: every rule id the lint
registry knows maps to exactly one taxonomy class, so adding a lint
rule without classifying it fails the suite instead of silently
dropping its diagnostics from the fleet dashboard.
"""

from __future__ import annotations

import pytest

from repro.fleet.taxonomy import (ALL_CLASSES, EXPECTED_SEPARATIONS,
                                  LINT_RULE_TAXONOMY, ErrorClass,
                                  taxonomy_of)
from repro.lint.registry import DEFAULT_REGISTRY


def test_every_registered_rule_maps_to_exactly_one_class():
    registered = set(DEFAULT_REGISTRY.ids())
    unmapped = registered - set(LINT_RULE_TAXONOMY)
    assert not unmapped, (
        f"lint rules without a taxonomy class: {sorted(unmapped)} -- "
        f"add them to repro.fleet.taxonomy.LINT_RULE_TAXONOMY")


def test_no_stale_taxonomy_entries():
    registered = set(DEFAULT_REGISTRY.ids())
    stale = set(LINT_RULE_TAXONOMY) - registered
    assert not stale, (
        f"taxonomy maps rules the registry no longer has: {sorted(stale)}")


def test_taxonomy_of_known_and_unknown_rules():
    some_rule = next(iter(LINT_RULE_TAXONOMY))
    assert isinstance(taxonomy_of(some_rule), ErrorClass)
    with pytest.raises(KeyError, match="LINT_RULE_TAXONOMY"):
        taxonomy_of("rule-that-does-not-exist")


def test_class_values_are_the_paper_error_vocabulary():
    assert {cls.value for cls in ALL_CLASSES} == {
        "false-code", "missed-code", "boundary", "gap", "table",
        "provenance-conflict"}


def test_parse_round_trips_every_class():
    for cls in ALL_CLASSES:
        assert ErrorClass.parse(cls.value) is cls
    with pytest.raises(ValueError):
        ErrorClass.parse("not-a-class")


def test_expected_separations_reference_real_axes():
    for baseline, axes in EXPECTED_SEPARATIONS.items():
        assert baseline in ("linear-sweep", "recursive-descent")
        for axis in axes:
            assert axis in ("false-code", "missed-code", "total")
