"""Tests for the longitudinal run-record store (repro.obs.store)."""

import json

import pytest

from repro.obs.store import (RECORD_SCHEMA, RunRecord, RunStore,
                             StoreError)


def record(rev="aaaa", run="r0", kind="bench-decode", ts="2026-01-01",
           metrics=None, meta=None):
    return RunRecord(git_rev=rev, run_id=run, kind=kind, timestamp=ts,
                     metrics=metrics or {"speedup": 8.0},
                     meta=meta or {})


class TestRunRecord:
    def test_round_trips_through_dict(self):
        original = record(metrics={"a": 1, "b": 2.5},
                          meta={"source": "x.json"})
        clone = RunRecord.from_dict(original.to_dict())
        assert clone == original

    def test_json_line_is_sorted_and_tagged(self):
        doc = json.loads(record().to_json_line())
        assert doc["schema"] == RECORD_SCHEMA
        assert list(doc) == sorted(doc)

    def test_empty_key_parts_are_rejected(self):
        with pytest.raises(StoreError, match="git_rev"):
            record(rev="")
        with pytest.raises(StoreError, match="kind"):
            record(kind="")

    def test_non_numeric_metric_is_rejected(self):
        with pytest.raises(StoreError, match="numeric"):
            record(metrics={"speedup": "fast"})
        with pytest.raises(StoreError, match="numeric"):
            record(metrics={"ok": True})

    def test_from_dict_rejects_wrong_schema(self):
        raw = record().to_dict()
        raw["schema"] = "something-else"
        with pytest.raises(StoreError, match="unknown record schema"):
            RunRecord.from_dict(raw)

    def test_from_dict_rejects_missing_field(self):
        raw = record().to_dict()
        del raw["run_id"]
        with pytest.raises(StoreError, match="run_id"):
            RunRecord.from_dict(raw)


class TestAppendOnly:
    def test_add_then_get(self):
        with RunStore() as store:
            assert store.add(record()) is True
            got = store.get("aaaa", "r0", "bench-decode")
            assert got is not None
            assert got.metrics == {"speedup": 8.0}

    def test_identical_readd_is_idempotent(self):
        with RunStore() as store:
            assert store.add(record()) is True
            assert store.add(record()) is False
            assert len(store) == 1

    def test_rekeying_different_content_is_an_error(self):
        with RunStore() as store:
            store.add(record(metrics={"speedup": 8.0}))
            with pytest.raises(StoreError, match="append-only"):
                store.add(record(metrics={"speedup": 1.0}))

    def test_same_kind_different_run_ids_coexist(self):
        with RunStore() as store:
            store.add(record(run="r0", metrics={"speedup": 8.0}))
            store.add(record(run="r1", metrics={"speedup": 7.0}))
            assert len(store) == 2


class TestQueries:
    def seeded(self):
        store = RunStore()
        store.add(record(rev="aaaa", kind="bench-decode",
                         ts="2026-01-01T00:00:00"))
        store.add(record(rev="aaaa", kind="fleet-trend",
                         ts="2026-01-01T00:00:01",
                         metrics={"f1": 0.99}))
        store.add(record(rev="bbbb", kind="bench-decode",
                         ts="2026-01-02T00:00:00",
                         metrics={"speedup": 9.0}))
        return store

    def test_query_filters_compose(self):
        store = self.seeded()
        assert len(store.query()) == 3
        assert len(store.query(git_rev="aaaa")) == 2
        only = store.query(git_rev="aaaa", kind="bench-decode")
        assert [r.kind for r in only] == ["bench-decode"]

    def test_query_order_is_timestamp_then_key(self):
        store = self.seeded()
        assert [r.timestamp for r in store.query()] == sorted(
            r.timestamp for r in store.query())

    def test_revisions_oldest_first(self):
        assert self.seeded().revisions() == ["aaaa", "bbbb"]

    def test_kinds_overall_and_per_revision(self):
        store = self.seeded()
        assert store.kinds() == ["bench-decode", "fleet-trend"]
        assert store.kinds("bbbb") == ["bench-decode"]

    def test_latest_picks_the_newest(self):
        latest = self.seeded().latest("bench-decode")
        assert latest is not None and latest.git_rev == "bbbb"
        scoped = self.seeded().latest("bench-decode", "aaaa")
        assert scoped is not None and scoped.metrics["speedup"] == 8.0

    def test_window_is_newest_n_oldest_first(self):
        store = self.seeded()
        window = store.window("bench-decode", 1)
        assert [r.git_rev for r in window] == ["bbbb"]
        window = store.window("bench-decode", 5)
        assert [r.git_rev for r in window] == ["aaaa", "bbbb"]
        assert store.window("bench-decode", 0) == []


class TestPersistenceAndInterchange:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "obs.sqlite"
        with RunStore(path) as store:
            store.add(record())
        with RunStore(path) as store:
            assert len(store) == 1
            assert store.get("aaaa", "r0", "bench-decode") is not None

    def test_jsonl_round_trip_rebuilds_identically(self, tmp_path):
        export = tmp_path / "records.jsonl"
        with RunStore() as store:
            store.add(record(rev="aaaa", ts="2026-01-01"))
            store.add(record(rev="bbbb", ts="2026-01-02",
                             metrics={"speedup": 9.0}))
            assert store.export_jsonl(export) == 2
            original = [r.to_dict() for r in store.query()]
        with RunStore() as rebuilt:
            assert rebuilt.import_jsonl(export) == 2
            assert [r.to_dict() for r in rebuilt.query()] == original
            # Re-import is a no-op, not an error.
            assert rebuilt.import_jsonl(export) == 0

    def test_import_conflict_names_the_line(self, tmp_path):
        export = tmp_path / "records.jsonl"
        with RunStore() as store:
            store.add(record())
            store.export_jsonl(export)
        with RunStore() as other:
            other.add(record(metrics={"speedup": 1.0}))
            with pytest.raises(StoreError, match=r":1: .*append-only"):
                other.import_jsonl(export)

    def test_import_rejects_non_json_lines(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        with RunStore() as store, \
                pytest.raises(StoreError, match="not JSON"):
            store.import_jsonl(bad)

    def test_export_is_deterministic_bytes(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        with RunStore() as store:
            store.add(record(metrics={"z": 1, "a": 2}))
            store.export_jsonl(a)
            store.export_jsonl(b)
        assert a.read_bytes() == b.read_bytes()
