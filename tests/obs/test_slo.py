"""Tests for SLO specs and the burn-rate gate (repro.obs.slo)."""

import pytest

from repro.obs.slo import (SloEntry, SpecError, VERDICT_SCHEMA,
                           evaluate, evaluate_entry, load_slo_spec,
                           render_verdicts)
from repro.obs.store import RunRecord, RunStore


def store_with(values, kind="fleet-trend", metric="corrected.instr_f1"):
    """One record per value, timestamps in list order (oldest first)."""
    store = RunStore()
    for index, value in enumerate(values):
        store.add(RunRecord(
            git_rev=f"rev{index}", run_id="r0", kind=kind,
            timestamp=f"2026-01-{index + 1:02d}",
            metrics={metric: value}))
    return store


class TestSloEntry:
    def test_needs_a_bound(self):
        with pytest.raises(SpecError, match="min or a max"):
            SloEntry(name="x", kind="k", metric="m")

    def test_rejects_bad_window_and_budget(self):
        with pytest.raises(SpecError, match="window"):
            SloEntry(name="x", kind="k", metric="m", min=0, window=0)
        with pytest.raises(SpecError, match="burn_budget"):
            SloEntry(name="x", kind="k", metric="m", min=0,
                     burn_budget=1.0)

    def test_violates_floor_and_ceiling(self):
        both = SloEntry(name="x", kind="k", metric="m",
                        min=0.5, max=2.0)
        assert both.violates(0.4) and both.violates(2.1)
        assert not both.violates(0.5) and not both.violates(2.0)
        assert both.bound() == ">= 0.5 and <= 2"


class TestLoadSpec:
    def test_toml_tables(self, tmp_path):
        spec = tmp_path / "slo.toml"
        spec.write_text(
            '[[slo]]\nname = "f1"\nkind = "fleet-trend"\n'
            'metric = "corrected.instr_f1"\nmin = 0.99\nwindow = 3\n'
            'burn_budget = 0.34\n\n'
            '[[slo]]\nname = "latency"\nkind = "serve-access"\n'
            'metric = "all.p99_ms"\nmax = 500.0\n'
            'allow_missing = true\n')
        entries = load_slo_spec(spec)
        assert [entry.name for entry in entries] == ["f1", "latency"]
        assert entries[0].window == 3
        assert entries[1].allow_missing is True

    def test_json_form(self, tmp_path):
        spec = tmp_path / "slo.json"
        spec.write_text('{"slo": [{"name": "f1", "kind": "k", '
                        '"metric": "m", "min": 0.9}]}')
        assert load_slo_spec(spec)[0].min == 0.9

    def test_unknown_field_is_an_error(self, tmp_path):
        spec = tmp_path / "slo.toml"
        spec.write_text('[[slo]]\nname = "x"\nkind = "k"\n'
                        'metric = "m"\nmin = 0\nthreshold = 5\n')
        with pytest.raises(SpecError, match="unknown field"):
            load_slo_spec(spec)

    def test_duplicate_name_is_an_error(self, tmp_path):
        spec = tmp_path / "slo.json"
        entry = '{"name": "x", "kind": "k", "metric": "m", "min": 0}'
        spec.write_text(f'[{entry}, {entry}]')
        with pytest.raises(SpecError, match="duplicate"):
            load_slo_spec(spec)

    def test_empty_spec_is_an_error(self, tmp_path):
        spec = tmp_path / "slo.toml"
        spec.write_text("# nothing here\n")
        with pytest.raises(SpecError, match="no .* entries"):
            load_slo_spec(spec)


class TestEvaluation:
    def floor(self, **kwargs):
        defaults = dict(name="f1", kind="fleet-trend",
                        metric="corrected.instr_f1", min=0.99)
        defaults.update(kwargs)
        return SloEntry(**defaults)

    def test_latest_run_passes_plain_threshold(self):
        store = store_with([0.995])
        cell = evaluate_entry(store, self.floor())
        assert cell["verdict"] == "ok"
        assert cell["latest"] == 0.995

    def test_latest_run_violates_plain_threshold(self):
        store = store_with([0.995, 0.90])
        cell = evaluate_entry(store, self.floor())
        assert cell["verdict"] == "violated"
        assert cell["violations"] == [
            {"git_rev": "rev1", "run_id": "r0", "value": 0.90}]

    def test_burn_budget_tolerates_one_noisy_run(self):
        # One violation in a window of three, budget 0.34: still ok.
        store = store_with([0.90, 0.995, 0.995])
        cell = evaluate_entry(store, self.floor(window=3,
                                                burn_budget=0.34))
        assert cell["verdict"] == "ok"
        assert cell["burn"] == pytest.approx(1 / 3, abs=1e-4)

    def test_sustained_burn_violates(self):
        store = store_with([0.90, 0.90, 0.995])
        cell = evaluate_entry(store, self.floor(window=3,
                                                burn_budget=0.34))
        assert cell["verdict"] == "violated"

    def test_window_sees_only_the_newest_runs(self):
        # The old violations fall outside a window of two.
        store = store_with([0.5, 0.5, 0.995, 0.995])
        cell = evaluate_entry(store, self.floor(window=2))
        assert cell["verdict"] == "ok"

    def test_missing_data_fails_by_default(self):
        cell = evaluate_entry(RunStore(), self.floor())
        assert cell["verdict"] == "no-data"

    def test_allow_missing_opts_out(self):
        cell = evaluate_entry(RunStore(),
                              self.floor(allow_missing=True))
        assert cell["verdict"] == "ok"

    def test_metric_absent_from_records_counts_as_missing(self):
        store = store_with([1.0], metric="some.other.metric")
        assert evaluate_entry(store, self.floor())["verdict"] == \
            "no-data"


class TestGateDocument:
    def test_verdict_document_and_failing_names(self):
        store = store_with([0.90])
        spec = [SloEntry(name="f1", kind="fleet-trend",
                         metric="corrected.instr_f1", min=0.99),
                SloEntry(name="absent", kind="bench-decode",
                         metric="speedup", min=1.0,
                         allow_missing=True)]
        verdict = evaluate(store, spec)
        assert verdict["schema"] == VERDICT_SCHEMA
        assert verdict["passed"] is False
        assert verdict["failing"] == ["f1"]

    def test_render_marks_pass_and_fail(self):
        store = store_with([0.995])
        spec = [SloEntry(name="f1", kind="fleet-trend",
                         metric="corrected.instr_f1", min=0.99)]
        text = render_verdicts(evaluate(store, spec))
        assert "gate: PASS (1/1 objectives ok)" in text
        failing = render_verdicts(evaluate(store_with([0.5]), spec))
        assert "VIOLATED" in failing and "gate: FAIL" in failing
