"""End-to-end observability: pool propagation, provenance, disabled cost.

Three contracts from the observability design:

* A parallel evaluation produces ONE trace: worker spans cross the
  process boundary and re-parent under the coordinator's span, and the
  result tables stay byte-identical to a serial run.
* The opt-in provenance trail reproduces known root-cause analyses
  (the seed-49 corrections from the strict soft-trace gate and the
  padding-as-code guard) from the audit trail alone.
* With everything off, the pipeline does no observability work and the
  published output is unchanged.
"""

import os
from dataclasses import replace

import pytest

from repro.core import Disassembler
from repro.core.config import DEFAULT_CONFIG
from repro.eval.dataset import evaluation_corpus
from repro.eval.parallel import baseline_spec, predict_pairs
from repro.lint import lint_disassembly
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import LintConfig, Linter
from repro.lint.registry import RuleRegistry
from repro.obs.provenance import ProvenanceLog
from repro.obs.schema import validate_jsonl
from repro.obs.trace import activate, spans_started
from repro.synth import BinarySpec, MSVC_LIKE, generate_binary


@pytest.fixture(scope="module")
def tiny_corpus():
    return evaluation_corpus(seeds=(4,), function_count=8)


@pytest.fixture(scope="module")
def seed49_case():
    # The PR-3 regression binary: its root cause (a refuted soft trace
    # at 0x259, a padding run kept as data at 0x37c) is documented in
    # the issue history; `repro explain` must reproduce it.
    return generate_binary(BinarySpec(name="seed49", style=MSVC_LIKE,
                                      function_count=6, seed=49))


@pytest.fixture(scope="module")
def seed49_rich(seed49_case, models):
    disassembler = Disassembler(
        models=models,
        config=replace(DEFAULT_CONFIG, record_provenance=True))
    return disassembler.disassemble_rich(seed49_case)


class TestPoolPropagation:
    def test_one_trace_with_reparented_worker_spans(self, tiny_corpus,
                                                    tmp_path):
        pairs = [(baseline_spec("linear-sweep"), case)
                 for case in tiny_corpus]
        assert len(pairs) > 1
        serial = predict_pairs(pairs, jobs=None)

        path = tmp_path / "pool.jsonl"
        with activate(path) as tracer:
            with tracer.span("corpus") as corpus_span:
                pooled = predict_pairs(pairs, jobs=2)

        # Determinism first: tracing must not perturb the results.
        assert [r.instruction_starts for r in pooled] \
            == [r.instruction_starts for r in serial]

        spans = tracer.finished
        assert all(s.trace_id == tracer.trace_id for s in spans)
        workers = [s for s in spans if s.name == "eval-pair"]
        assert len(workers) == len(pairs)
        # Worker spans really came from other processes, yet re-parent
        # under the coordinator's span.
        assert all(s.pid != os.getpid() for s in workers)
        assert all(s.parent_id == corpus_span.span_id for s in workers)

        summary = validate_jsonl(path)
        assert summary["traces"] == 1
        assert summary["roots"] == 1
        assert summary["dangling_parents"] == 0
        assert summary["pids"] > 1

    def test_serial_path_traces_in_process(self, tiny_corpus):
        pairs = [(baseline_spec("linear-sweep"), case)
                 for case in tiny_corpus]
        with activate() as tracer:
            predict_pairs(pairs, jobs=None)
        workers = [s for s in tracer.finished if s.name == "eval-pair"]
        assert len(workers) == len(pairs)
        assert all(s.pid == os.getpid() for s in workers)


class TestSeed49Explain:
    """The acceptance bar: PR-3's root cause, from the trail alone."""

    def test_0x259_shows_the_refuted_soft_trace(self, seed49_rich):
        assert seed49_rich.provenance is not None
        chain = seed49_rich.provenance.explain(0x259)
        assert "refuted SOFT trace" in chain
        assert "strict soft-trace gate" in chain
        assert "gap-data" in chain          # the byte ended up data

    def test_0x37c_shows_the_padding_guard(self, seed49_rich):
        chain = seed49_rich.provenance.explain(0x37c)
        assert "skip-realign" in chain
        assert "padding-as-code guard" in chain

    def test_events_are_ordered_and_serializable(self, seed49_rich):
        log = seed49_rich.provenance
        assert [e.seq for e in log] == list(range(len(log)))
        clone = ProvenanceLog.from_json(log.to_json())
        assert clone.events == log.events


class TestDisabledCost:
    def test_no_spans_and_no_provenance_by_default(self, disassembler,
                                                   msvc_case):
        before = spans_started()
        rich = disassembler.disassemble_rich(msvc_case)
        assert spans_started() == before
        assert rich.provenance is None

    def test_provenance_does_not_change_the_published_result(
            self, seed49_case, seed49_rich, models):
        plain = Disassembler(models=models).disassemble(seed49_case)
        assert seed49_rich.result.to_json() == plain.to_json()

    def test_tracing_does_not_change_the_published_result(
            self, models, msvc_case):
        disassembler = Disassembler(models=models)
        plain = disassembler.disassemble(msvc_case)
        with activate():
            traced = disassembler.disassemble(msvc_case)
        assert traced.to_json() == plain.to_json()


class TestLintEnrichment:
    def stub_registry(self):
        registry = RuleRegistry()

        @registry.register("stub-rule", Severity.WARNING, "test stub")
        def stub(context, severity):
            yield Diagnostic(rule="stub-rule", severity=severity,
                             start=0x10, end=0x20, message="stub")
        return registry

    def test_diagnostics_carry_the_decision_chain(self, msvc_superset,
                                                  disassembler,
                                                  msvc_case):
        result = disassembler.disassemble(msvc_case)
        log = ProvenanceLog()
        log.record("accept-trace", 0x0, 0x40, pass_id="correction",
                   source="entry-point", detail="traced")
        report = Linter(registry=self.stub_registry()).lint(
            result, msvc_superset, provenance=log)
        (diagnostic,) = report.diagnostics
        assert diagnostic.provenance \
            == ("[correction] accept-trace 0x0-0x40 (entry-point): "
                "traced",)
        assert diagnostic.to_dict()["provenance"] == [
            diagnostic.provenance[0]]

    def test_chains_are_capped_at_the_last_five(self, msvc_superset,
                                                disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        log = ProvenanceLog()
        for index in range(8):
            log.record("mark-data", 0x10, 0x20, pass_id=f"p{index}")
        report = Linter(registry=self.stub_registry()).lint(
            result, msvc_superset, provenance=log)
        (diagnostic,) = report.diagnostics
        assert len(diagnostic.provenance) == 5
        assert diagnostic.provenance[-1].startswith("[p7]")

    def test_provenance_off_keeps_json_byte_identical(self, msvc_superset,
                                                      disassembler,
                                                      msvc_case):
        result = disassembler.disassemble(msvc_case)
        config = LintConfig()
        plain = lint_disassembly(result, msvc_superset, config=config)
        enriched = lint_disassembly(result, msvc_superset, config=config,
                                    provenance=ProvenanceLog())
        # An empty trail attaches nothing, so the JSON stays identical
        # to a provenance-free run -- the schema only grows when a
        # chain actually exists.
        assert enriched.to_json() == plain.to_json()
        assert "provenance" not in plain.to_json()
