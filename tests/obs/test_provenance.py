"""Tests for the per-byte decision audit trail."""

from repro.obs.provenance import DecisionEvent, ProvenanceLog


def sample_log() -> ProvenanceLog:
    log = ProvenanceLog()
    log.record("accept-trace", 0x10, 0x30, pass_id="correction",
               source="entry-point", priority="ANCHOR",
               detail="traced 8 instructions", score=2.0)
    log.record("refute-trace", 0x40, 0x48, pass_id="correction",
               source="prologue", priority="IDIOM",
               detail="derailed at +0x4")
    log.record("gap-data", 0x30, 0x40, pass_id="gaps-final",
               detail="no surviving code candidate")
    return log


class TestDecisionEvent:
    def test_covers_half_open_range(self):
        event = DecisionEvent(seq=0, pass_id="gaps-1", action="gap-data",
                              start=0x10, end=0x20)
        assert event.covers(0x10)
        assert event.covers(0x1f)
        assert not event.covers(0x20)

    def test_render_single_byte_and_range(self):
        single = DecisionEvent(seq=0, pass_id="realign",
                               action="skip-realign", start=5, end=6,
                               source="padding", priority="SOFT",
                               detail="pure padding run")
        ranged = DecisionEvent(seq=1, pass_id="tables",
                               action="mark-data", start=0x10, end=0x20)
        assert single.render() == ("[realign] skip-realign 0x5 SOFT "
                                   "(padding): pure padding run")
        assert ranged.render() == "[tables] mark-data 0x10-0x20"

    def test_dict_round_trip_uses_pass_key(self):
        event = DecisionEvent(seq=3, pass_id="gaps-2", action="gap-data",
                              start=1, end=2, attrs={"score": 0.5})
        raw = event.to_dict()
        assert raw["pass"] == "gaps-2"
        clone = DecisionEvent.from_dict(raw)
        assert clone == event
        assert clone.attrs == {"score": 0.5}


class TestProvenanceLog:
    def test_record_assigns_sequence_numbers(self):
        log = sample_log()
        assert [event.seq for event in log] == [0, 1, 2]
        assert len(log) == 3

    def test_events_at_returns_covering_chain(self):
        log = sample_log()
        assert [e.action for e in log.events_at(0x20)] == ["accept-trace"]
        assert [e.action for e in log.events_at(0x35)] == ["gap-data"]
        assert log.events_at(0x100) == []

    def test_events_overlapping_half_open(self):
        log = sample_log()
        actions = [e.action for e in log.events_overlapping(0x2f, 0x41)]
        assert actions == ["accept-trace", "refute-trace", "gap-data"]
        assert log.events_overlapping(0x30, 0x30) == []

    def test_explain_renders_chain(self):
        text = sample_log().explain(0x20)
        assert "[correction] accept-trace 0x10-0x30" in text
        assert "traced 8 instructions" in text

    def test_explain_unknown_byte(self):
        assert sample_log().explain(0x999) \
            == "no recorded decisions cover 0x999"

    def test_explain_limit_elides_early_events(self):
        log = ProvenanceLog()
        for index in range(4):
            log.record("mark-data", 0, 8, pass_id=f"pass-{index}")
        text = log.explain(0, limit=2)
        assert text.startswith("... 2 earlier event(s) elided")
        assert "[pass-3]" in text and "[pass-0]" not in text

    def test_json_round_trip(self):
        log = sample_log()
        clone = ProvenanceLog.from_json(log.to_json())
        assert clone.events == log.events
        assert '"schema": "repro-provenance-v1"' in log.to_json(indent=1)
