"""Tests for cross-revision diffing and reporting (repro.obs.report)."""

import pytest

from repro.obs.report import (DEFAULT_NOISE, DIFF_SCHEMA, NoiseBand,
                              band_of, diff_revisions, direction_of,
                              load_noise_spec, regressions,
                              render_markdown, report_revision)
from repro.obs.store import RunRecord, RunStore, StoreError


def seeded(base_metrics, current_metrics, kind="bench-decode"):
    store = RunStore()
    store.add(RunRecord(git_rev="aaaa", run_id="r0", kind=kind,
                        timestamp="2026-01-01", metrics=base_metrics))
    store.add(RunRecord(git_rev="bbbb", run_id="r0", kind=kind,
                        timestamp="2026-01-02",
                        metrics=current_metrics))
    return store


class TestDirectionInference:
    @pytest.mark.parametrize("metric, expected", [
        ("corrected.instr_f1", "up"),
        ("speedup", "up"),
        ("throughput", "up"),
        ("p99_ms", "down"),
        ("total_error_rate", "down"),
        ("phase.superset.self_fraction", "down"),
        ("binaries.total", "none"),
    ])
    def test_name_patterns(self, metric, expected):
        assert direction_of("k", metric, DEFAULT_NOISE) == expected

    def test_spec_direction_overrides_name_inference(self):
        bands = (NoiseBand("k:binaries.total", direction="up"),) \
            + DEFAULT_NOISE
        assert direction_of("k", "binaries.total", bands) == "up"

    def test_first_matching_band_wins(self):
        bands = (NoiseBand("k:x", rel_tol=0.5),
                 NoiseBand("k:*", rel_tol=0.1)) + DEFAULT_NOISE
        assert band_of("k", "x", bands).rel_tol == 0.5
        assert band_of("k", "y", bands).rel_tol == 0.1


class TestDiffClassification:
    def test_regression_outside_the_band(self):
        store = seeded({"instr_f1": 0.99}, {"instr_f1": 0.80})
        diff = diff_revisions(store, "aaaa", "bbbb")
        cell = diff["kinds"]["bench-decode"]["metrics"]["instr_f1"]
        assert cell["status"] == "regressed"
        assert cell["delta"] == pytest.approx(-0.19)
        assert diff["summary"]["regressed"] == 1
        assert diff["schema"] == DIFF_SCHEMA

    def test_improvement_along_the_direction(self):
        store = seeded({"speedup": 5.0}, {"speedup": 10.0})
        diff = diff_revisions(store, "aaaa", "bbbb")
        cell = diff["kinds"]["bench-decode"]["metrics"]["speedup"]
        assert cell["status"] == "improved"

    def test_within_noise_is_unchanged(self):
        # speedup has a 20% default band; a 5% wobble is noise.
        store = seeded({"speedup": 10.0}, {"speedup": 10.5})
        diff = diff_revisions(store, "aaaa", "bbbb")
        cell = diff["kinds"]["bench-decode"]["metrics"]["speedup"]
        assert cell["status"] == "unchanged"

    def test_directionless_motion_is_changed_not_failed(self):
        store = seeded({"binaries.total": 10}, {"binaries.total": 20})
        diff = diff_revisions(store, "aaaa", "bbbb")
        cell = diff["kinds"]["bench-decode"]["metrics"]["binaries.total"]
        assert cell["status"] == "changed"
        assert regressions(diff) == []

    def test_added_and_removed_never_regress(self):
        store = seeded({"old_metric_ms": 5.0}, {"new_f1": 0.9})
        diff = diff_revisions(store, "aaaa", "bbbb")
        cells = diff["kinds"]["bench-decode"]["metrics"]
        assert cells["old_metric_ms"]["status"] == "removed"
        assert cells["new_f1"]["status"] == "added"
        assert regressions(diff) == []

    def test_one_sided_kind_is_reported_not_failed(self):
        store = seeded({"speedup": 5.0}, {"speedup": 5.0})
        store.add(RunRecord(git_rev="bbbb", run_id="r0",
                            kind="profile", timestamp="2026-01-02",
                            metrics={"samples.total": 9}))
        diff = diff_revisions(store, "aaaa", "bbbb")
        assert diff["kinds"]["profile"] == {"only_in": "current",
                                            "metrics": {}}
        assert regressions(diff) == []

    def test_kind_filter_restricts_the_diff(self):
        store = seeded({"speedup": 5.0}, {"speedup": 1.0})
        store.add(RunRecord(git_rev="aaaa", run_id="r0", kind="other",
                            timestamp="2026-01-01", metrics={"x": 1}))
        store.add(RunRecord(git_rev="bbbb", run_id="r0", kind="other",
                            timestamp="2026-01-02", metrics={"x": 1}))
        diff = diff_revisions(store, "aaaa", "bbbb", kinds=["other"])
        assert list(diff["kinds"]) == ["other"]

    def test_unknown_revision_is_an_error(self):
        store = seeded({"speedup": 5.0}, {"speedup": 5.0})
        with pytest.raises(StoreError, match="no records"):
            diff_revisions(store, "aaaa", "cccc")

    def test_diff_is_deterministic(self):
        store = seeded({"a_f1": 0.9, "b_ms": 3.0},
                       {"a_f1": 0.5, "b_ms": 9.0})
        first = diff_revisions(store, "aaaa", "bbbb")
        second = diff_revisions(store, "aaaa", "bbbb")
        assert first == second

    def test_regressions_lines_name_kind_and_metric(self):
        store = seeded({"instr_f1": 0.99}, {"instr_f1": 0.50})
        lines = regressions(diff_revisions(store, "aaaa", "bbbb"))
        assert len(lines) == 1
        assert lines[0].startswith("bench-decode:instr_f1:")


class TestNoiseSpec:
    def test_toml_spec_prepends_user_bands(self, tmp_path):
        spec = tmp_path / "noise.toml"
        spec.write_text('[[noise]]\npattern = "bench-*:speedup"\n'
                        'rel_tol = 0.9\n')
        bands = load_noise_spec(spec)
        assert bands[0].pattern == "bench-*:speedup"
        assert bands[-1] == DEFAULT_NOISE[-1]

    def test_json_spec_list_form(self, tmp_path):
        spec = tmp_path / "noise.json"
        spec.write_text('[{"pattern": "k:*", "abs_tol": 5.0, '
                        '"direction": "down"}]')
        band = load_noise_spec(spec)[0]
        assert band.abs_tol == 5.0 and band.direction == "down"

    def test_patternless_entry_is_an_error(self, tmp_path):
        spec = tmp_path / "noise.json"
        spec.write_text('[{"rel_tol": 0.5}]')
        with pytest.raises(StoreError, match="without a pattern"):
            load_noise_spec(spec)

    def test_widened_band_silences_a_regression(self):
        store = seeded({"speedup": 10.0}, {"speedup": 6.0})
        strict = diff_revisions(store, "aaaa", "bbbb")
        assert strict["summary"]["regressed"] == 1
        loose = diff_revisions(
            store, "aaaa", "bbbb",
            noise=(NoiseBand("*:speedup", rel_tol=0.5),) + DEFAULT_NOISE)
        assert loose["summary"]["regressed"] == 0


class TestRendering:
    def test_markdown_report_shape(self):
        store = seeded({"instr_f1": 0.99, "speedup": 8.0},
                       {"instr_f1": 0.50, "speedup": 8.0})
        text = render_markdown(diff_revisions(store, "aaaa", "bbbb"))
        assert text.startswith("# Regression report: `aaaa` → `bbbb`")
        assert "| `instr_f1` |" in text
        assert "regressed" in text
        # Unchanged metrics are elided but counted.
        assert "`speedup`" not in text
        assert "1 unchanged metric(s) elided" in text

    def test_markdown_all_includes_unchanged(self):
        store = seeded({"speedup": 8.0}, {"speedup": 8.0})
        text = render_markdown(diff_revisions(store, "aaaa", "bbbb"),
                               include_unchanged=True)
        assert "| `speedup` |" in text


class TestReportRevision:
    def test_defaults_to_the_predecessor(self):
        store = seeded({"speedup": 8.0}, {"speedup": 2.0})
        diff = report_revision(store, "bbbb")
        assert diff["base_rev"] == "aaaa"
        assert diff["summary"]["regressed"] == 1

    def test_first_revision_reports_against_itself(self):
        store = RunStore()
        store.add(RunRecord(git_rev="aaaa", run_id="r0", kind="k",
                            timestamp="t", metrics={"x": 1}))
        diff = report_revision(store, "aaaa")
        assert diff["base_rev"] == diff["current_rev"] == "aaaa"
        assert diff["summary"]["regressed"] == 0

    def test_explicit_baseline(self):
        store = seeded({"speedup": 8.0}, {"speedup": 8.0})
        store.add(RunRecord(git_rev="cccc", run_id="r0",
                            kind="bench-decode", timestamp="2026-01-03",
                            metrics={"speedup": 2.0}))
        diff = report_revision(store, "cccc", baseline="aaaa")
        assert diff["base_rev"] == "aaaa"
        assert diff["summary"]["regressed"] == 1
