"""End-to-end tests for the ``repro obs`` CLI family.

The scenario mirrors CI: artifacts from two revisions of a mini fleet
run land in one store via ``obs record``, then ``obs diff`` trends
across them, ``obs gate`` enforces an SLO spec, and an injected
regression must flip both to a non-zero exit.
"""

import json

import pytest

from repro.cli import main

REV_A = "aaaa111122223333"
REV_B = "bbbb444455556666"


def trend_doc(f1=0.995, failed=0):
    return {
        "schema": "repro-fleet-trend-v1",
        "binaries": {"total": 6, "ok": 6 - failed, "failed": failed},
        "tools": {"corrected": {
            "gt": {"binaries": 6 - failed, "instr_f1": f1,
                   "false_code_rate": 0.001,
                   "missed_code_rate": 0.002,
                   "total_error_rate": round(1 - f1, 6)},
            "taxonomy": {"data-in-text": {"errors": 2}},
        }},
        "styles": {},
    }


def bench_doc(speedup=8.0):
    return {"schema": "repro-bench-v1", "tool": "decode",
            "config": {"seeds": 2},
            "metrics": {"speedup": speedup, "seconds": 0.25}}


@pytest.fixture
def recorded(tmp_path):
    """A store holding two revisions of trend + bench artifacts."""
    store = tmp_path / "obs.sqlite"

    def record(rev, stamp, docs):
        paths = []
        for name, doc in docs.items():
            path = tmp_path / rev / name
            path.parent.mkdir(exist_ok=True)
            path.write_text(json.dumps(doc))
            paths.append(str(path))
        code = main(["obs", "record", "--store", str(store),
                     "--rev", rev, "--timestamp", stamp, *paths])
        assert code == 0
        return paths

    record(REV_A, "2026-01-01T00:00:00+00:00",
           {"trend.json": trend_doc(), "BENCH_decode.json": bench_doc()})
    record(REV_B, "2026-01-02T00:00:00+00:00",
           {"trend.json": trend_doc(), "BENCH_decode.json": bench_doc()})
    return store


class TestRecord:
    def test_reports_kind_and_metric_count(self, tmp_path, capsys):
        artifact = tmp_path / "trend.json"
        artifact.write_text(json.dumps(trend_doc()))
        code = main(["obs", "record", "--store",
                     str(tmp_path / "s.sqlite"), "--rev", REV_A,
                     "--timestamp", "t", str(artifact)])
        assert code == 0
        out = capsys.readouterr().out
        assert "recorded fleet-trend" in out
        assert f"for {REV_A} run r0" in out

    def test_rerecording_is_idempotent(self, recorded, tmp_path,
                                       capsys):
        artifact = tmp_path / REV_A / "trend.json"
        code = main(["obs", "record", "--store", str(recorded),
                     "--rev", REV_A,
                     "--timestamp", "2026-01-01T00:00:00+00:00",
                     str(artifact)])
        assert code == 0
        assert "already recorded" in capsys.readouterr().out

    def test_unrecognized_artifact_exits_2(self, tmp_path, capsys):
        junk = tmp_path / "junk.json"
        junk.write_text('{"schema": "mystery-v9"}')
        code = main(["obs", "record", "--store",
                     str(tmp_path / "s.sqlite"), "--rev", REV_A,
                     "--timestamp", "t", str(junk)])
        assert code == 2
        assert "unrecognized" in capsys.readouterr().err


class TestQuery:
    def test_text_listing(self, recorded, capsys):
        assert main(["obs", "query", "--store", str(recorded)]) == 0
        out = capsys.readouterr().out
        assert out.count("fleet-trend") == 2
        assert out.count("bench-decode") == 2

    def test_json_filtered_by_kind(self, recorded, capsys):
        assert main(["obs", "query", "--store", str(recorded),
                     "--kind", "bench-decode", "--format",
                     "json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [doc["kind"] for doc in docs] == ["bench-decode"] * 2


class TestDiff:
    def test_clean_diff_exits_zero(self, recorded, capsys):
        code = main(["obs", "diff", "--store", str(recorded),
                     REV_A, REV_B])
        captured = capsys.readouterr()
        assert code == 0
        assert "0 regressed" in captured.out
        assert captured.err == ""

    def test_diff_is_deterministic(self, recorded, capsys):
        main(["obs", "diff", "--store", str(recorded), REV_A, REV_B,
              "--format", "json"])
        first = capsys.readouterr().out
        main(["obs", "diff", "--store", str(recorded), REV_A, REV_B,
              "--format", "json"])
        assert capsys.readouterr().out == first

    def test_prefix_revisions_resolve(self, recorded, capsys):
        assert main(["obs", "diff", "--store", str(recorded),
                     "aaaa", "bbbb"]) == 0
        assert REV_A in capsys.readouterr().out

    def test_injected_regression_flips_the_exit_code(self, recorded,
                                                     tmp_path, capsys):
        bad = tmp_path / "bad-trend.json"
        bad.write_text(json.dumps(trend_doc(f1=0.80, failed=2)))
        assert main(["obs", "record", "--store", str(recorded),
                     "--rev", "cccc7777", "--timestamp",
                     "2026-01-03T00:00:00+00:00", str(bad)]) == 0
        capsys.readouterr()
        code = main(["obs", "diff", "--store", str(recorded),
                     REV_B, "cccc7777"])
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSION: fleet-trend:corrected.instr_f1" \
            in captured.err

    def test_markdown_format(self, recorded, capsys):
        assert main(["obs", "diff", "--store", str(recorded),
                     REV_A, REV_B, "--format", "markdown",
                     "--all"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Regression report")
        assert "| `speedup` |" in out

    def test_unknown_revision_exits_2(self, recorded, capsys):
        assert main(["obs", "diff", "--store", str(recorded),
                     REV_A, "feedbeef"]) == 2
        assert "no records" in capsys.readouterr().err


class TestGitRevResolution:
    def test_head_resolves_to_a_recorded_full_hash(self, tmp_path,
                                                   capsys):
        # CI records under $GITHUB_SHA and diffs HEAD against itself
        # as the bootstrap smoke check.
        import subprocess
        head = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True,
                              check=True).stdout.strip()
        store = tmp_path / "s.sqlite"
        artifact = tmp_path / "BENCH_decode.json"
        artifact.write_text(json.dumps(bench_doc()))
        assert main(["obs", "record", "--store", str(store),
                     "--rev", head, "--timestamp", "t",
                     str(artifact)]) == 0
        assert main(["obs", "diff", "--store", str(store),
                     "HEAD", "HEAD"]) == 0
        assert "0 regressed" in capsys.readouterr().out


class TestReport:
    def test_report_defaults_to_newest_vs_predecessor(self, recorded,
                                                      capsys):
        assert main(["obs", "report", "--store", str(recorded)]) == 0
        out = capsys.readouterr().out
        assert f"`{REV_A}` → `{REV_B}`" in out

    def test_report_to_file(self, recorded, tmp_path):
        out = tmp_path / "report.md"
        assert main(["obs", "report", "--store", str(recorded),
                     "--output", str(out)]) == 0
        assert out.read_text().startswith("# Regression report")


class TestGate:
    def spec(self, tmp_path, f1_floor=0.99):
        path = tmp_path / "slo.toml"
        path.write_text(
            '[[slo]]\nname = "fleet-f1"\nkind = "fleet-trend"\n'
            f'metric = "corrected.instr_f1"\nmin = {f1_floor}\n'
            'window = 2\n\n'
            '[[slo]]\nname = "decode-speedup"\n'
            'kind = "bench-decode"\nmetric = "speedup"\nmin = 2.0\n')
        return str(path)

    def test_healthy_store_passes(self, recorded, tmp_path, capsys):
        code = main(["obs", "gate", "--store", str(recorded),
                     "--spec", self.spec(tmp_path)])
        assert code == 0
        assert "gate: PASS (2/2 objectives ok)" in \
            capsys.readouterr().out

    def test_violation_exits_nonzero(self, recorded, tmp_path,
                                     capsys):
        code = main(["obs", "gate", "--store", str(recorded),
                     "--spec", self.spec(tmp_path, f1_floor=0.999)])
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out and "gate: FAIL" in out

    def test_missing_data_fails_the_gate(self, tmp_path, capsys):
        code = main(["obs", "gate", "--store",
                     str(tmp_path / "empty.sqlite"),
                     "--spec", self.spec(tmp_path)])
        assert code == 1
        assert "NO DATA" in capsys.readouterr().out

    def test_malformed_spec_exits_2(self, recorded, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('[[slo]]\nname = "x"\n')
        assert main(["obs", "gate", "--store", str(recorded),
                     "--spec", str(bad)]) == 2


class TestInterchange:
    def test_export_import_round_trip(self, recorded, tmp_path,
                                      capsys):
        dump = tmp_path / "records.jsonl"
        assert main(["obs", "export", "--store", str(recorded),
                     str(dump)]) == 0
        assert "exported 4 record(s)" in capsys.readouterr().out
        other = tmp_path / "other.sqlite"
        assert main(["obs", "import", "--store", str(other),
                     str(dump)]) == 0
        assert "imported 4 new record(s)" in capsys.readouterr().out
        assert main(["obs", "diff", "--store", str(other),
                     REV_A, REV_B]) == 0


class TestFlame:
    PROFILE = {"schema": "repro-profile-v1", "interval_ms": 5.0,
               "samples": 7,
               "phases": {"superset": 5, "(no phase)": 2},
               "stacks": {"repro.cli:main;repro.core:run": 5,
                          "repro.cli:main": 2}}

    def test_flame_from_profile_file(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(self.PROFILE))
        assert main(["obs", "flame", str(path)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert "repro.cli:main;repro.core:run 5" in lines
        assert "repro.cli:main 2" in lines

    def test_flame_from_the_store(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(self.PROFILE))
        store = tmp_path / "s.sqlite"
        assert main(["obs", "record", "--store", str(store),
                     "--rev", REV_A, "--timestamp", "t",
                     str(path)]) == 0
        capsys.readouterr()
        assert main(["obs", "flame", "--store", str(store)]) == 0
        assert "repro.cli:main;repro.core:run 5" in \
            capsys.readouterr().out

    def test_flame_on_non_profile_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bench_doc()))
        assert main(["obs", "flame", str(path)]) == 2

    def test_flame_on_empty_store_exits_2(self, tmp_path, capsys):
        assert main(["obs", "flame", "--store",
                     str(tmp_path / "empty.sqlite")]) == 2
