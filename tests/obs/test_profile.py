"""Tests for the sampling profiler (repro.obs.profile)."""

import json
import time

import pytest

from repro.obs import profile as profile_mod
from repro.obs.profile import (PROFILE_SCHEMA, SamplingProfiler,
                               collapsed_from_doc, current_profiler,
                               enter_phase, exit_phase,
                               profile_path_from_env, profiler_active,
                               profiling, samples_taken,
                               start_profiler, stop_profiler)
from repro.obs.trace import phase_span


@pytest.fixture(autouse=True)
def _no_leaked_profiler():
    """Tests must never leave the process-wide sampler installed."""
    yield
    stop_profiler()


def busy(seconds=0.05):
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(500))


def sample_until(profiler, minimum=3, budget=2.0):
    deadline = time.perf_counter() + budget
    while profiler.samples < minimum and time.perf_counter() < deadline:
        busy(0.02)


class TestSampler:
    def test_samples_a_busy_thread(self):
        profiler = start_profiler(interval=0.001)
        sample_until(profiler)
        stop_profiler()
        assert profiler.samples >= 3
        assert profiler.stacks
        # This module is on the sampled stack of the main thread.
        assert any("test_profile" in stack
                   for stack in profiler.stacks)

    def test_collapsed_stacks_are_root_first_semicolon_joined(self):
        profiler = start_profiler(interval=0.001)
        sample_until(profiler)
        stop_profiler()
        for line in profiler.collapsed_lines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            frames = stack.split(";")
            assert all(":" in frame for frame in frames)
            # Root-first: the interpreter entry is shallow, the busy
            # loop deep, so our helper never precedes the runner.
            assert "busy" not in frames[0]

    def test_counts_accumulate_in_samples_taken(self):
        before = samples_taken()
        profiler = start_profiler(interval=0.001)
        sample_until(profiler)
        stop_profiler()
        assert samples_taken() - before == profiler.samples

    def test_exported_doc_shape(self, tmp_path):
        profiler = start_profiler(interval=0.001)
        sample_until(profiler)
        stop_profiler()
        path = profiler.write(tmp_path / "profile.json",
                              command="test")
        doc = json.loads(path.read_text())
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["interval_ms"] == 1.0
        assert doc["samples"] == sum(doc["stacks"].values())
        assert doc["command"] == "test"
        assert collapsed_from_doc(doc) == profiler.collapsed_lines()


class TestDisabledCost:
    def test_disabled_process_takes_zero_samples(self):
        before = samples_taken()
        busy(0.05)
        assert samples_taken() == before

    def test_hooks_are_inert_without_a_profiler(self):
        assert not profiler_active()
        assert enter_phase("superset") is False
        assert profile_mod._PHASE_STACKS == {}
        exit_phase()        # must not raise on an empty stack

    def test_phase_span_opens_no_phase_when_disabled(self):
        with phase_span("superset"):
            assert profile_mod._PHASE_STACKS == {}


class TestPhaseAttribution:
    def test_samples_attribute_to_the_innermost_phase(self):
        profiler = start_profiler(interval=0.001)
        with phase_span("superset"):
            sample_until(profiler)
        stop_profiler()
        assert profiler.phases.get("superset", 0) >= 1

    def test_nested_phases_attribute_to_the_inner_one(self):
        start_profiler(interval=0.001)
        try:
            with phase_span("outer"):
                assert enter_phase("inner") is True
                try:
                    me = profile_mod._PHASE_STACKS[
                        __import__("threading").get_ident()]
                    assert me == ["outer", "inner"]
                finally:
                    exit_phase()
        finally:
            stop_profiler()

    def test_unphased_samples_land_in_no_phase(self):
        profiler = start_profiler(interval=0.001)
        sample_until(profiler)
        stop_profiler()
        assert set(profiler.phases) <= {"(no phase)"}

    def test_teardown_mid_phase_stays_balanced(self):
        start_profiler(interval=0.001)
        with phase_span("superset"):
            stop_profiler()      # clears the stacks under our feet
        assert profile_mod._PHASE_STACKS == {}


class TestActivation:
    def test_double_start_is_an_error(self):
        start_profiler(interval=0.001)
        with pytest.raises(RuntimeError, match="already active"):
            start_profiler()

    def test_stop_is_idempotent_and_returns_the_profiler(self):
        profiler = start_profiler(interval=0.001)
        assert stop_profiler() is profiler
        assert stop_profiler() is None
        assert current_profiler() is None

    def test_profiling_context_writes_on_exit(self, tmp_path):
        sink = tmp_path / "out" / "profile.json"
        with profiling(sink, interval=0.001, command="ctx") as profiler:
            assert current_profiler() is profiler
            busy(0.02)
        assert not profiler_active()
        doc = json.loads(sink.read_text())
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["command"] == "ctx"

    def test_profiling_context_without_path_writes_nothing(self,
                                                           tmp_path):
        with profiling(None, interval=0.001):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_env_activation_path(self, monkeypatch):
        monkeypatch.delenv(profile_mod.PROFILE_ENV, raising=False)
        assert profile_path_from_env() is None
        monkeypatch.setenv(profile_mod.PROFILE_ENV, "")
        assert profile_path_from_env() is None
        monkeypatch.setenv(profile_mod.PROFILE_ENV, "p.json")
        assert profile_path_from_env() == "p.json"


class TestSamplingProfilerUnit:
    def test_instance_start_twice_is_an_error(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_is_a_no_op(self):
        SamplingProfiler().stop()
