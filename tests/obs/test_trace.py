"""Tests for hierarchical spans, the process-wide tracer, and export."""

import json
import os

from repro.obs.schema import validate_jsonl
from repro.obs.trace import (SPAN_SCHEMA, Span, SpanContext, Tracer,
                             activate, current_tracer, phase_span,
                             set_tracer, spans_started, tracing_active,
                             trace_path_from_env)
from repro.perf import PhaseTimings


class TestSpanContext:
    def test_round_trips_through_dict(self):
        ctx = SpanContext(trace_id="t1", span_id="s1")
        assert SpanContext.from_dict(ctx.as_dict()) == ctx

    def test_from_dict_of_none_is_none(self):
        assert SpanContext.from_dict(None) is None
        assert SpanContext.from_dict({}) is None


class TestSpanTree:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id == tracer.trace_id
        # Inner finishes first (stack order).
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_span_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", tool="x") as span:
            span.attrs["extra"] = 1
        assert span.duration >= 0.0
        assert span.attrs == {"tool": "x", "extra": 1}
        assert "_t0" not in span.attrs

    def test_start_finish_with_explicit_parent(self):
        # The async shape: no stack, explicit parents per request.
        tracer = Tracer()
        root = tracer.start("request", parent="")
        child = tracer.start("job", parent=root.span_id)
        tracer.finish(child)
        tracer.finish(root, status=200)
        assert root.parent_id is None          # "" means true root
        assert child.parent_id == root.span_id
        assert root.attrs["status"] == 200

    def test_emit_records_externally_measured_span(self):
        tracer = Tracer()
        span = tracer.emit("queue-wait", 0.25, parent="p1", id="j1")
        assert span.duration == 0.25
        assert span.parent_id == "p1"
        assert span.attrs == {"id": "j1"}
        assert span in tracer.finished

    def test_context_points_at_current_span(self):
        tracer = Tracer()
        assert tracer.context() == SpanContext(tracer.trace_id, "")
        with tracer.span("outer") as outer:
            assert tracer.context() == outer.context()

    def test_worker_tracer_inherits_parent_context(self):
        coordinator = Tracer()
        with coordinator.span("corpus") as corpus:
            ctx = coordinator.context()
        worker = Tracer(parent=SpanContext.from_dict(ctx.as_dict()))
        assert worker.trace_id == coordinator.trace_id
        with worker.span("eval-pair") as span:
            pass
        assert span.parent_id == corpus.span_id


class TestAdopt:
    def test_same_trace_spans_adopted_verbatim(self):
        coordinator = Tracer()
        worker = Tracer(parent=coordinator.context())
        with worker.span("eval-pair"):
            pass
        dumps = [span.to_dict() for span in worker.drain()]
        assert coordinator.adopt(dumps) == 1
        adopted = coordinator.finished[-1]
        assert adopted.trace_id == coordinator.trace_id
        assert adopted.name == "eval-pair"

    def test_foreign_trace_rewritten_and_reparented(self):
        coordinator = Tracer()
        foreign = Tracer()                     # distinct trace id
        with foreign.span("orphan"):
            pass
        with coordinator.span("parent") as parent:
            coordinator.adopt([s.to_dict() for s in foreign.drain()])
        adopted = [s for s in coordinator.finished if s.name == "orphan"]
        assert adopted[0].trace_id == coordinator.trace_id
        assert adopted[0].parent_id == parent.span_id


class TestExport:
    def test_export_jsonl_is_schema_valid(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        summary = validate_jsonl(path)
        assert summary["spans"] == 2
        assert summary["traces"] == 1
        assert summary["roots"] == 1
        assert summary["dangling_parents"] == 0

    def test_exported_lines_carry_schema_tag(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        record = json.loads(path.read_text().splitlines()[0])
        assert record["schema"] == SPAN_SCHEMA
        assert record["pid"] == os.getpid()

    def test_flush_appends_and_clears(self, tmp_path):
        tracer = Tracer()
        path = tmp_path / "trace.jsonl"
        with tracer.span("a"):
            pass
        assert tracer.flush_jsonl(path) == 1
        assert tracer.finished == []
        with tracer.span("b"):
            pass
        assert tracer.flush_jsonl(path) == 1
        assert tracer.flush_jsonl(path) == 0    # nothing buffered
        assert len(path.read_text().splitlines()) == 2

    def test_span_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("op", k="v") as span:
            pass
        clone = Span.from_dict(span.to_dict())
        assert clone.span_id == span.span_id
        assert clone.name == "op"
        assert clone.attrs == {"k": "v"}


class TestProcessWideTracer:
    def test_activate_installs_restores_and_exports(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert current_tracer() is None
        with activate(path) as tracer:
            assert current_tracer() is tracer
            assert tracing_active()
            with tracer.span("root"):
                pass
        assert current_tracer() is None
        assert validate_jsonl(path)["spans"] == 1

    def test_fork_inherited_tracer_is_ignored(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert current_tracer() is tracer
            tracer._pid += 1                   # simulate the fork child
            assert current_tracer() is None
            assert not tracing_active()
        finally:
            set_tracer(previous)

    def test_trace_path_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace_path_from_env() is None
        monkeypatch.setenv("REPRO_TRACE", "")
        assert trace_path_from_env() is None
        monkeypatch.setenv("REPRO_TRACE", "/tmp/t.jsonl")
        assert trace_path_from_env() == "/tmp/t.jsonl"


class TestPhaseSpanBridge:
    def test_disabled_path_matches_phase_timings(self):
        # With no tracer this must degrade to PhaseTimings.phase: a
        # timing bucket, no span, no span-counter movement.
        timings = PhaseTimings()
        before = spans_started()
        with phase_span("superset", timings):
            pass
        assert spans_started() == before
        assert "superset" in timings.phases

    def test_disabled_path_records_on_exception(self):
        timings = PhaseTimings()
        try:
            with phase_span("boom", timings):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in timings.phases

    def test_traced_path_feeds_timings_from_span(self):
        timings = PhaseTimings()
        with activate() as tracer:
            with phase_span("scoring", timings, bytes=10) as span:
                pass
        assert span in tracer.finished
        assert span.attrs["bytes"] == 10
        # One measurement point: the bucket IS the span duration.
        assert timings.phases["scoring"] == span.duration

    def test_traced_path_without_timings(self):
        with activate() as tracer:
            with phase_span("scoring") as span:
                pass
        assert span in tracer.finished
