"""Tests for artifact ingestion (repro.obs.ingest)."""

import json

import pytest

from repro.obs.ingest import (IngestError, flatten_access_log,
                              flatten_bench, flatten_numeric,
                              flatten_profile, flatten_trace,
                              flatten_trend, ingest_file)
from repro.obs.metrics import MetricsRegistry

TREND = {
    "schema": "repro-fleet-trend-v1",
    "binaries": {"total": 10, "ok": 9, "failed": 1},
    "tools": {
        "corrected": {
            "gt": {"binaries": 9, "instr_f1": 0.995,
                   "false_code_rate": 0.001, "missed_code_rate": 0.002,
                   "total_error_rate": 0.003},
            "taxonomy": {"data-in-text": {"errors": 4}},
        },
        "linear": {"gt": {"binaries": 0}},   # no scored binaries
    },
    "styles": {
        "msvc-like": {"tools": {"corrected": {
            "gt": {"binaries": 3, "instr_f1": 0.99,
                   "total_error_rate": 0.004}}}},
    },
    "separation": {"linear": {"instr_f1": {"holds": True}}},
}


class TestFlattenNumeric:
    def test_nested_dicts_get_dotted_names(self):
        flat = flatten_numeric({"a": {"b": 1, "c": {"d": 2.5}}, "e": 3})
        assert flat == {"a.b": 1, "a.c.d": 2.5, "e": 3}

    def test_non_numeric_leaves_are_dropped(self):
        flat = flatten_numeric({"name": "decode", "n": 1,
                                "xs": [1, 2, 3]})
        assert flat == {"n": 1}

    def test_bools_become_floats(self):
        assert flatten_numeric({"ok": True}) == {"ok": 1.0}


class TestFlattenTrend:
    def test_headline_metrics_present(self):
        flat = flatten_trend(TREND)
        assert flat["binaries.failure_rate"] == pytest.approx(0.1)
        assert flat["corrected.instr_f1"] == 0.995
        assert flat["corrected.taxonomy.data-in-text.errors"] == 4
        assert flat["style.msvc-like.instr_f1"] == 0.99
        assert flat["separation.linear.instr_f1.holds"] == 1.0

    def test_unscored_tools_are_skipped(self):
        assert not any(name.startswith("linear.")
                       for name in flatten_trend(TREND))


class TestFlattenBench:
    def test_envelope_metrics_are_flattened_under_tool_kind(self):
        kind, flat = flatten_bench({
            "schema": "repro-bench-v1", "tool": "decode",
            "config": {"sections": 4},
            "metrics": {"speedup": 8.0, "seconds": {"warm": 0.5}}})
        assert kind == "bench-decode"
        assert flat == {"speedup": 8.0, "seconds.warm": 0.5}
        # Config is context, not a trended measurement.
        assert "sections" not in flat

    def test_legacy_payload_falls_back_to_numeric_leaves(self):
        kind, flat = flatten_bench({
            "kind": "fleet", "python": "3.11", "cpu_count": 8,
            "throughput": 2.5, "trend": {"binaries": {"total": 9}}})
        assert kind == "bench-fleet"
        assert flat == {"throughput": 2.5}

    def test_toolless_payload_is_an_error(self):
        with pytest.raises(IngestError, match="tool"):
            flatten_bench({"speedup": 8.0})


class TestFlattenAccessLog:
    LINES = [
        {"endpoint": "/disassemble", "status": 200, "latency_ms": 10.0},
        {"endpoint": "/disassemble", "status": 500, "latency_ms": 30.0},
        {"endpoint": "/healthz", "status": 200, "latency_ms": 1.0},
        {"event": "drain-complete"},          # lifecycle line: skipped
    ]

    def test_per_endpoint_and_rollup(self):
        flat = flatten_access_log(self.LINES)
        assert flat["disassemble.requests"] == 2
        assert flat["disassemble.error_rate"] == 0.5
        assert flat["disassemble.p99_ms"] == 30.0
        assert flat["all.requests"] == 3
        assert flat["all.error_rate"] == pytest.approx(1 / 3)

    def test_request_free_log_is_an_error(self):
        with pytest.raises(IngestError, match="no request lines"):
            flatten_access_log([{"event": "drain-complete"}])


class TestFlattenTrace:
    def test_self_time_subtracts_children(self):
        spans = [
            {"schema": "repro-trace-v1", "name": "disasm",
             "span_id": "s1", "parent_id": None, "dur_us": 1_000_000},
            {"schema": "repro-trace-v1", "name": "superset",
             "span_id": "s2", "parent_id": "s1", "dur_us": 600_000},
        ]
        flat = flatten_trace(spans)
        assert flat["span.disasm.total_s"] == 1.0
        assert flat["span.disasm.self_s"] == pytest.approx(0.4)
        assert flat["span.superset.self_s"] == pytest.approx(0.6)
        assert flat["span.superset.count"] == 1

    def test_self_time_clamps_at_zero(self):
        spans = [
            {"name": "parent", "span_id": "s1", "parent_id": None,
             "dur_us": 100},
            {"name": "child", "span_id": "s2", "parent_id": "s1",
             "dur_us": 500},    # async child outlives the parent
        ]
        assert flatten_trace(spans)["span.parent.self_s"] == 0.0

    def test_empty_trace_is_an_error(self):
        with pytest.raises(IngestError, match="no spans"):
            flatten_trace([])


class TestFlattenProfile:
    def test_phase_fractions(self):
        flat = flatten_profile({"samples": 10,
                                "phases": {"superset": 6,
                                           "(no phase)": 4}})
        assert flat["samples.total"] == 10
        assert flat["phase.superset.self_fraction"] == 0.6

    def test_zero_samples_yields_no_fractions(self):
        assert flatten_profile({"samples": 0, "phases": {}}) == \
            {"samples.total": 0}


class TestIngestFile:
    def ingest(self, tmp_path, name, content):
        path = tmp_path / name
        if isinstance(content, str):
            path.write_text(content)
        else:
            path.write_text(json.dumps(content))
        return ingest_file(path, git_rev="aaaa", run_id="r0",
                           timestamp="2026-01-01")

    def test_detects_fleet_trend(self, tmp_path):
        rec = self.ingest(tmp_path, "trend.json", TREND)
        assert rec.kind == "fleet-trend"
        assert rec.meta["source"] == "trend.json"

    def test_detects_bench_envelope(self, tmp_path):
        rec = self.ingest(tmp_path, "BENCH_decode.json", {
            "schema": "repro-bench-v1", "tool": "decode",
            "config": {}, "metrics": {"speedup": 8.0}})
        assert rec.kind == "bench-decode"
        assert rec.metrics == {"speedup": 8.0}

    def test_detects_profile_and_keeps_stacks_in_meta(self, tmp_path):
        rec = self.ingest(tmp_path, "profile.json", {
            "schema": "repro-profile-v1", "interval_ms": 5.0,
            "samples": 4, "phases": {"superset": 4},
            "stacks": {"m:f;m:g": 4}})
        assert rec.kind == "profile"
        assert rec.metrics["phase.superset.self_fraction"] == 1.0
        assert rec.meta["stacks"] == {"m:f;m:g": 4}

    def test_detects_metrics_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_traces_total").inc(3, outcome="kept")
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        rec = self.ingest(tmp_path, "metrics.json",
                          registry.snapshot())
        assert rec.kind == "metrics-snapshot"
        assert rec.metrics['repro_traces_total{outcome="kept"}'] == 3
        assert rec.metrics["h_seconds.count"] == 1

    def test_detects_access_log_jsonl(self, tmp_path):
        lines = "\n".join(json.dumps(line)
                          for line in TestFlattenAccessLog.LINES)
        rec = self.ingest(tmp_path, "access.jsonl", lines)
        assert rec.kind == "serve-access"
        assert rec.metrics["all.requests"] == 3

    def test_detects_trace_jsonl(self, tmp_path):
        lines = "\n".join(json.dumps(
            {"schema": "repro-trace-v1", "name": "d",
             "span_id": f"s{index}", "parent_id": None, "dur_us": 10})
            for index in range(2))
        rec = self.ingest(tmp_path, "trace.jsonl", lines)
        assert rec.kind == "trace-rollup"

    def test_kind_override_wins(self, tmp_path):
        path = tmp_path / "trend.json"
        path.write_text(json.dumps(TREND))
        rec = ingest_file(path, git_rev="aaaa", run_id="r0",
                          timestamp="t", kind="nightly-trend")
        assert rec.kind == "nightly-trend"

    def test_unrecognized_json_is_an_error(self, tmp_path):
        with pytest.raises(IngestError, match="unrecognized JSON"):
            self.ingest(tmp_path, "junk.json", {"schema": "mystery-v9"})

    def test_unrecognized_jsonl_is_an_error(self, tmp_path):
        with pytest.raises(IngestError, match="unrecognized JSONL"):
            self.ingest(tmp_path, "junk.jsonl",
                        '{"x": 1}\n{"x": 2}')

    def test_empty_file_is_an_error(self, tmp_path):
        with pytest.raises(IngestError, match="empty"):
            self.ingest(tmp_path, "empty.json", "")
