"""Tests for the repro-trace-v1 JSONL validator (library and CLI)."""

import json

import pytest

from repro.obs.schema import (SchemaError, main, validate_jsonl,
                              validate_span_dict)
from repro.obs.trace import Tracer


def good_span(**overrides) -> dict:
    span = {"schema": "repro-trace-v1", "trace_id": "t1", "span_id": "s1",
            "parent_id": None, "name": "op", "start_us": 10, "dur_us": 5,
            "pid": 1234, "attrs": {}}
    span.update(overrides)
    return span


def write_jsonl(path, spans):
    path.write_text("".join(json.dumps(s) + "\n" for s in spans))
    return path


class TestValidateSpanDict:
    def test_accepts_good_span(self):
        span = good_span()
        assert validate_span_dict(span) is span

    @pytest.mark.parametrize("field", ["schema", "trace_id", "span_id",
                                       "name", "start_us", "dur_us",
                                       "pid", "attrs"])
    def test_rejects_missing_field(self, field):
        span = good_span()
        del span[field]
        with pytest.raises(SchemaError, match=field):
            validate_span_dict(span)

    def test_rejects_wrong_type(self):
        with pytest.raises(SchemaError, match="start_us"):
            validate_span_dict(good_span(start_us="10"))

    def test_rejects_bool_masquerading_as_int(self):
        with pytest.raises(SchemaError, match="pid"):
            validate_span_dict(good_span(pid=True))

    def test_rejects_unknown_schema_tag(self):
        with pytest.raises(SchemaError, match="unknown schema"):
            validate_span_dict(good_span(schema="repro-trace-v0"))

    def test_rejects_non_string_parent(self):
        with pytest.raises(SchemaError, match="parent_id"):
            validate_span_dict(good_span(parent_id=7))

    def test_rejects_empty_span_id(self):
        with pytest.raises(SchemaError, match="span_id"):
            validate_span_dict(good_span(span_id=""))

    def test_rejects_negative_duration(self):
        with pytest.raises(SchemaError, match="dur_us"):
            validate_span_dict(good_span(dur_us=-1))

    def test_rejects_non_object(self):
        with pytest.raises(SchemaError, match="object"):
            validate_span_dict([1, 2])


class TestValidateJsonl:
    def test_real_export_summary(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        summary = validate_jsonl(
            tracer.export_jsonl(tmp_path / "t.jsonl"))
        assert summary == {"spans": 2, "traces": 1, "roots": 1,
                           "dangling_parents": 0, "pids": 1, "names": 2}

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(good_span()) + "\n\n")
        assert validate_jsonl(path)["spans"] == 1

    def test_rejects_empty_export(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(SchemaError, match="no spans"):
            validate_jsonl(path)

    def test_rejects_malformed_json_with_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(good_span()) + "\n{nope\n")
        with pytest.raises(SchemaError, match="line 2"):
            validate_jsonl(path)

    def test_rejects_duplicate_span_ids(self, tmp_path):
        path = write_jsonl(tmp_path / "t.jsonl",
                           [good_span(), good_span()])
        with pytest.raises(SchemaError, match="duplicate"):
            validate_jsonl(path)

    def test_rejects_export_with_no_root(self, tmp_path):
        path = write_jsonl(tmp_path / "t.jsonl",
                           [good_span(parent_id="elsewhere")])
        with pytest.raises(SchemaError, match="no root"):
            validate_jsonl(path)

    def test_counts_dangling_parents(self, tmp_path):
        path = write_jsonl(tmp_path / "t.jsonl",
                           [good_span(),
                            good_span(span_id="s2", parent_id="gone")])
        assert validate_jsonl(path)["dangling_parents"] == 1


class TestCli:
    def test_ok_exit_zero(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "t.jsonl", [good_span()])
        assert main([str(path)]) == 0
        assert "1 spans" in capsys.readouterr().out

    def test_invalid_exit_one(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        assert main([str(path)]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_usage_exit_two(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err
