"""Tests for the metrics registry and Prometheus text exposition."""

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               REGISTRY)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_keep_separate_series(self):
        counter = Counter("c_total")
        counter.inc(outcome="hit")
        counter.inc(3, outcome="miss")
        assert counter.value(outcome="hit") == 1
        assert counter.value(outcome="miss") == 3
        assert counter.total() == 4

    def test_label_order_is_irrelevant(self):
        counter = Counter("c_total")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(b="2", a="1") == 2


class TestGauge:
    def test_set_and_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value() == 3

    def test_labeled_set(self):
        gauge = Gauge("g")
        gauge.set(1, worker="0")
        gauge.set(0, worker="1")
        assert gauge.value(worker="0") == 1
        assert gauge.value(worker="1") == 0


class TestHistogram:
    def test_observe_counts_and_sums(self):
        hist = Histogram("h_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(5.55)

    def test_buckets_are_cumulative(self):
        hist = Histogram("h_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        samples = {(name, extra): value
                   for name, _, value, extra in hist.samples()}
        assert samples[("h_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("h_seconds_bucket", (("le", "1"),))] == 2
        assert samples[("h_seconds_bucket", (("le", "+Inf"),))] == 2


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a_total")

    def test_get_and_iteration_order(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.gauge("a_depth")
        assert registry.get("a_depth").kind == "gauge"
        assert registry.get("missing") is None
        assert [m.name for m in registry] == ["a_depth", "b_total"]

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.reset()
        assert registry.get("a_total") is None


class TestPrometheusExposition:
    def test_render_includes_help_type_and_samples(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_cache_total", "Cache lookups")
        counter.inc(2, outcome="hit")
        text = registry.render_prometheus()
        assert "# HELP repro_cache_total Cache lookups\n" in text
        assert "# TYPE repro_cache_total counter\n" in text
        assert 'repro_cache_total{outcome="hit"} 2\n' in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(path='a"b\\c\nd')
        text = registry.render_prometheus()
        assert r'path="a\"b\\c\nd"' in text

    def test_histogram_exposition_shape(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", buckets=(0.5,)).observe(0.1)
        text = registry.render_prometheus()
        assert '# TYPE h_seconds histogram' in text
        assert 'h_seconds_bucket{le="0.5"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert 'h_seconds_sum 0.1' in text
        assert 'h_seconds_count 1' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestExpositionEdgeCases:
    """Corners of the text format a scraper is entitled to rely on."""

    @pytest.mark.parametrize("raw, escaped", [
        ('back\\slash', r'v="back\\slash"'),
        ('quo"te', r'v="quo\"te"'),
        ('new\nline', r'v="new\nline"'),
        ('all\\three\n"', r'v="all\\three\n\""'),
    ])
    def test_each_escapable_label_character(self, raw, escaped):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(v=raw)
        assert escaped in registry.render_prometheus()

    def test_nan_renders_as_prometheus_nan(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(float("nan"))
        assert registry.render_prometheus() == "# TYPE g gauge\ng NaN\n"

    def test_infinities_render_with_sign_and_capital_inf(self):
        registry = MetricsRegistry()
        registry.gauge("up").set(float("inf"))
        registry.gauge("down").set(float("-inf"))
        text = registry.render_prometheus()
        assert "up +Inf\n" in text
        assert "down -Inf\n" in text

    def test_empty_registry_render_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.render_prometheus() == ""
        registry.reset()
        assert registry.render_prometheus() == ""

    def test_plus_inf_bucket_always_equals_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.01, 0.5, 2.0, 1e9, float("inf")):
            hist.observe(value)
        samples = {(name, extra): value
                   for name, _, value, extra in hist.samples()}
        inf_bucket = samples[("h_seconds_bucket", (("le", "+Inf"),))]
        count = samples[("h_seconds_count", ())]
        assert inf_bucket == count == 5
        # And the finite buckets stay cumulative below it.
        assert samples[("h_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("h_seconds_bucket", (("le", "1"),))] == 2

    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help").inc(outcome="hit")
        snap = registry.snapshot()
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["values"] == {'{outcome="hit"}': 1.0}


class TestGlobalRegistry:
    def test_pipeline_metrics_are_registered(self):
        # Importing the pipeline registers its instrumentation points
        # with the process-global registry.
        import repro.core.correction      # noqa: F401
        import repro.superset.superset    # noqa: F401
        for name in ("repro_traces_total",
                     "repro_bytes_reclassified_total",
                     "repro_gap_candidates_total",
                     "repro_superset_cache_total",
                     "repro_decode_errors_total"):
            assert REGISTRY.get(name) is not None, name
