"""Tests for the linear-sweep baseline."""

from repro.baselines import linear_sweep
from repro.eval.metrics import evaluate
from repro.isa import Assembler
from repro.isa.registers import RAX, RBP, RSP


class TestLinearSweep:
    def test_clean_code_is_fully_decoded(self):
        a = Assembler()
        a.push_r(RBP)
        a.mov_rr(RBP, RSP)
        a.mov_ri(RAX, 7, width=32)
        a.pop_r(RBP)
        a.ret()
        result = linear_sweep(a.finish())
        assert sorted(result.instructions) == [0, 1, 4, 9, 10]
        assert not result.data_regions

    def test_resynchronizes_after_bad_byte(self):
        text = b"\x90\x06\x06\x90\xc3"
        result = linear_sweep(text)
        assert result.data_regions == [(1, 3)]
        assert 3 in result.instructions

    def test_decodes_embedded_data_as_code(self, msvc_case):
        """The defining failure mode: embedded tables become code."""
        evaluation = evaluate(linear_sweep(msvc_case.text),
                              msvc_case.truth)
        assert evaluation.bytes.false_code > 100

    def test_near_perfect_on_clean_binary(self, gcc_case):
        evaluation = evaluate(linear_sweep(gcc_case.text), gcc_case.truth)
        assert evaluation.instructions.recall > 0.99
        assert evaluation.bytes.total_errors < 20

    def test_recall_stays_high_even_on_complex_binaries(self, msvc_case):
        evaluation = evaluate(linear_sweep(msvc_case.text),
                              msvc_case.truth)
        assert evaluation.instructions.recall > 0.95

    def test_empty_input(self):
        result = linear_sweep(b"")
        assert not result.instructions
        assert not result.data_regions
