"""Tests for the ground-truth oracle."""

from repro.baselines import oracle
from repro.eval.metrics import evaluate


class TestOracle:
    def test_oracle_scores_perfectly(self, all_cases):
        for case in all_cases:
            evaluation = evaluate(oracle(case), case.truth)
            assert evaluation.instructions.f1 == 1.0, case.name
            assert evaluation.bytes.total_errors == 0, case.name
            assert evaluation.functions.f1 == 1.0, case.name

    def test_oracle_reports_all_instructions(self, msvc_case):
        result = oracle(msvc_case)
        assert (result.instruction_starts
                == msvc_case.truth.instruction_starts)
