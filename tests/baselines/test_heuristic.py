"""Tests for recursive descent with heuristic gap scanning."""

from repro.baselines import heuristic_descent, recursive_descent
from repro.eval.metrics import evaluate
from repro.isa import Assembler
from repro.isa.registers import RBP, RSP


class TestHeuristicDescent:
    def test_finds_unreferenced_prologue(self):
        a = Assembler()
        a.ret()                       # entry function: just ret
        a.align(16, b"\xcc")
        a.push_r(RBP)                 # orphan function at 16
        a.mov_rr(RBP, RSP)
        a.pop_r(RBP)
        a.ret()
        result = heuristic_descent(a.finish(), 0)
        assert 16 in result.instructions
        assert 16 in result.function_entries

    def test_improves_recall_over_plain_rd(self, msvc_case):
        plain = evaluate(recursive_descent(msvc_case.text, 0),
                         msvc_case.truth)
        heuristic = evaluate(heuristic_descent(msvc_case.text, 0),
                             msvc_case.truth)
        assert (heuristic.instructions.recall
                > plain.instructions.recall + 0.05)

    def test_still_misses_case_blocks(self, msvc_case):
        """Jump-table case blocks stay invisible (unresolved ijmp)."""
        evaluation = evaluate(heuristic_descent(msvc_case.text, 0),
                              msvc_case.truth)
        assert evaluation.instructions.recall < 0.95

    def test_keeps_high_precision(self, all_cases):
        for case in all_cases:
            evaluation = evaluate(heuristic_descent(case.text, 0),
                                  case.truth)
            assert evaluation.instructions.precision > 0.9, case.name

    def test_fixpoint_terminates(self, gcc_case):
        result = heuristic_descent(gcc_case.text, 0, max_rounds=3)
        assert result.instructions
