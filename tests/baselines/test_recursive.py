"""Tests for the recursive-descent baseline."""

from repro.baselines import recursive_descent
from repro.eval.metrics import evaluate
from repro.isa import Assembler


class TestRecursiveDescent:
    def test_follows_direct_flow(self):
        a = Assembler()
        a.call("f")          # 0
        a.ret()              # 5
        a.bind("f")
        a.jmp("g")           # 6
        a.db(b"\x06\x06")    # junk, never visited
        a.bind("g")
        a.ret()              # 13
        result = recursive_descent(a.finish(), 0)
        assert set(result.instructions) == {0, 5, 6, 13}

    def test_junk_becomes_data(self):
        a = Assembler()
        a.jmp("x")
        a.db(b"\xde\xad\xbe\xef")
        a.bind("x")
        a.ret()
        result = recursive_descent(a.finish(), 0)
        assert (5, 9) in result.data_regions

    def test_call_targets_become_function_entries(self):
        a = Assembler()
        a.call("f")
        a.ret()
        a.bind("f")
        a.ret()
        result = recursive_descent(a.finish(), 0)
        assert result.function_entries == {0, 6}

    def test_misses_indirect_functions(self, msvc_case):
        """Recursive descent cannot see through pointer tables."""
        evaluation = evaluate(recursive_descent(msvc_case.text, 0),
                              msvc_case.truth)
        assert evaluation.instructions.recall < 0.75
        assert evaluation.instructions.precision > 0.9

    def test_false_code_only_from_noreturn_continuations(self, msvc_case,
                                                         gcc_case):
        """RD blindly follows call fall-through, so its only false code
        is the data placed after noreturn calls (absent in gcc-like
        binaries, which put nothing there)."""
        msvc = evaluate(recursive_descent(msvc_case.text, 0),
                        msvc_case.truth)
        assert 0 < msvc.bytes.false_code < 400
        gcc = evaluate(recursive_descent(gcc_case.text, 0),
                       gcc_case.truth)
        assert gcc.bytes.false_code == 0

    def test_entry_out_of_range_is_harmless(self):
        result = recursive_descent(b"\x90\xc3", 10)
        assert not result.instructions

    def test_stops_at_invalid_target_bytes(self):
        result = recursive_descent(b"\x06\x90", 0)
        assert not result.instructions
