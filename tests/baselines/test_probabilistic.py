"""Tests for the probabilistic-disassembly baseline."""


from repro.baselines import probabilistic_disassembly
from repro.baselines.probabilistic import _invalid_closure
from repro.eval.metrics import evaluate
from repro.isa import Assembler
from repro.superset import Superset


class TestInvalidClosure:
    def test_undecodable_offsets_are_dead(self):
        superset = Superset.build(b"\x06\x90\xc3")
        dead = _invalid_closure(superset)
        assert dead[0]
        assert not dead[1] and not dead[2]

    def test_forced_flow_into_invalid_is_dead(self):
        # nop at 0 falls into invalid at 1 -> 0 is transitively dead.
        superset = Superset.build(b"\x90\x06" + b"\x90\xc3")
        dead = _invalid_closure(superset)
        assert dead[0]

    def test_terminators_stay_alive(self):
        superset = Superset.build(b"\xc3\x06")
        dead = _invalid_closure(superset)
        assert not dead[0]

    def test_conditional_branch_with_one_live_successor_alive(self):
        a = Assembler()
        a.jcc("e", "ok")        # falls into invalid, branches to ret
        a.bind("ok")
        text = a.finish()[:6]   # strip to keep layout tight
        a2 = Assembler()
        a2.jcc("e", "ok")
        a2.db(b"\x06")
        a2.bind("ok")
        a2.ret()
        superset = Superset.build(a2.finish())
        dead = _invalid_closure(superset)
        assert not dead[0]      # one successor (the ret) is alive


class TestProbabilisticDisassembly:
    def test_high_recall_moderate_precision(self, msvc_case):
        evaluation = evaluate(
            probabilistic_disassembly(msvc_case.text, 0), msvc_case.truth)
        assert evaluation.instructions.recall > 0.85
        assert evaluation.instructions.precision > 0.5

    def test_threshold_monotone_in_recall(self, msvc_case):
        loose = probabilistic_disassembly(msvc_case.text, 0, threshold=0.9)
        tight = probabilistic_disassembly(msvc_case.text, 0,
                                          threshold=0.05)
        assert len(loose.instructions) >= len(tight.instructions)

    def test_entry_point_always_code(self, msvc_case):
        result = probabilistic_disassembly(msvc_case.text, 0)
        assert 0 in result.instructions

    def test_dead_offsets_never_emitted(self):
        text = b"\x90\x06\x90\xc3"
        result = probabilistic_disassembly(text, 2)
        assert 0 not in result.instructions
        assert 1 not in result.instructions

    def test_reuses_prebuilt_superset(self, msvc_case, msvc_superset):
        result = probabilistic_disassembly(msvc_case.text, 0,
                                           superset=msvc_superset)
        assert result.instructions
