"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli")
    prefix = directory / "demo"
    code = main(["generate", str(prefix), "--functions", "8",
                 "--seed", "5", "--style", "msvc-like"])
    assert code == 0
    return prefix


class TestGenerate:
    def test_writes_both_files(self, generated):
        assert generated.with_suffix(".bin").exists()
        assert (generated.parent / "demo.gt.json").exists()

    def test_output_message(self, tmp_path, capsys):
        main(["generate", str(tmp_path / "g"), "--functions", "5"])
        out = capsys.readouterr().out
        assert "text bytes" in out and "functions" in out


class TestDisasm:
    def test_summary_mode(self, generated, capsys):
        assert main(["disasm", str(generated.with_suffix(".bin"))]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "functions at:" in out

    def test_listing_mode(self, generated, capsys):
        code = main(["disasm", str(generated.with_suffix(".bin")),
                     "--listing"])
        assert code == 0
        out = capsys.readouterr().out
        assert "<func_0000>:" in out
        assert "push" in out


class TestEvaluate:
    def test_scores_against_ground_truth(self, generated, capsys):
        assert main(["evaluate", str(generated)]) == 0
        out = capsys.readouterr().out
        assert "instruction F1:" in out
        assert "byte errors:" in out


class TestLint:
    def test_text_output(self, generated, capsys):
        code = main(["lint", str(generated.with_suffix(".bin")),
                     "--fail-on", "never"])
        assert code == 0
        out = capsys.readouterr().out
        assert "diagnostics (" in out.splitlines()[-1]

    def test_json_schema(self, generated, capsys):
        main(["lint", str(generated.with_suffix(".bin")),
              "--format", "json", "--fail-on", "never"])
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"tool", "rules_run", "counts", "diagnostics"}
        assert report["tool"] == "repro"
        assert set(report["counts"]) == {"info", "warning", "error"}
        for diagnostic in report["diagnostics"]:
            assert set(diagnostic) == {"rule", "severity", "start", "end",
                                       "message", "suggestion"}

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 18
        assert any(line.startswith("orphan-code") for line in lines)

    def test_missing_binary_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "required" in capsys.readouterr().err

    def test_unknown_disable_is_usage_error(self, generated, capsys):
        code = main(["lint", str(generated.with_suffix(".bin")),
                     "--disable", "no-such-rule"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_fail_on_threshold_controls_exit(self, generated, capsys):
        binary = str(generated.with_suffix(".bin"))
        assert main(["lint", binary, "--fail-on", "never"]) == 0
        # The demo binary produces warnings but no errors.
        assert main(["lint", binary, "--fail-on", "error"]) == 0
        assert main(["lint", binary, "--fail-on", "info"]) == 1
        capsys.readouterr()


class TestExperimentsPassthrough:
    def test_unknown_id_fails(self):
        assert main(["experiments", "zzz"]) == 1


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_style(self):
        with pytest.raises(SystemExit):
            main(["generate", "x", "--style", "icc"])


class TestRealFormats:
    @pytest.fixture(scope="class")
    def elf_prefix(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-elf")
        prefix = directory / "real"
        code = main(["generate", str(prefix), "--functions", "6",
                     "--seed", "9", "--format", "elf"])
        assert code == 0
        return prefix

    def test_generate_elf_writes_elf(self, elf_prefix):
        elf = elf_prefix.with_suffix(".elf")
        assert elf.exists()
        assert elf.read_bytes()[:4] == b"\x7fELF"

    def test_disasm_accepts_elf(self, elf_prefix, capsys):
        code = main(["disasm", str(elf_prefix.with_suffix(".elf"))])
        assert code == 0
        assert "instructions" in capsys.readouterr().out

    def test_disasm_json_matches_rprb_path(self, elf_prefix, tmp_path,
                                           capsys):
        main(["generate", str(tmp_path / "real"), "--functions", "6",
              "--seed", "9"])
        capsys.readouterr()
        assert main(["disasm", "--json",
                     str(elf_prefix.with_suffix(".elf"))]) == 0
        via_elf = capsys.readouterr().out
        assert main(["disasm", "--json",
                     str(tmp_path / "real.bin")]) == 0
        assert via_elf == capsys.readouterr().out

    def test_lint_accepts_elf(self, elf_prefix, capsys):
        code = main(["lint", str(elf_prefix.with_suffix(".elf")),
                     "--format", "json"])
        assert code == 0
        assert "diagnostics" in capsys.readouterr().out

    def test_unrecognized_format_is_exit_2_one_line(self, tmp_path,
                                                    capsys):
        junk = tmp_path / "junk.bin"
        junk.write_bytes(b"\x00\x01\x02\x03 not a binary")
        assert main(["disasm", str(junk)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unrecognized format (magic=00010203)" in err
        assert main(["lint", str(junk)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unrecognized format" in err

    def test_truncated_elf_is_exit_2(self, elf_prefix, tmp_path, capsys):
        blob = elf_prefix.with_suffix(".elf").read_bytes()
        bad = tmp_path / "trunc.elf"
        bad.write_bytes(blob[:48])
        assert main(["disasm", str(bad)]) == 2
        assert "offset" in capsys.readouterr().err


class TestExplain:
    @pytest.fixture(scope="class")
    def seed49(self, tmp_path_factory):
        # The PR-3 regression binary whose root cause the audit trail
        # must reproduce (see tests/obs/test_pipeline.py).
        prefix = tmp_path_factory.mktemp("cli-explain") / "seed49"
        assert main(["generate", str(prefix), "--functions", "6",
                     "--seed", "49", "--style", "msvc-like"]) == 0
        return prefix.with_suffix(".bin")

    def test_entry_point_chain(self, generated, capsys):
        binary = str(generated.with_suffix(".bin"))
        assert main(["explain", binary, "0x0"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("0x0: code (instruction start)")
        assert "accept-trace" in out
        assert "entry-point" in out

    def test_json_output(self, generated, capsys):
        binary = str(generated.with_suffix(".bin"))
        assert main(["explain", binary, "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["address"] == "0x0"
        assert payload["classification"] == "code (instruction start)"
        assert payload["events"]
        assert all("pass" in event for event in payload["events"])

    def test_seed49_refuted_soft_trace(self, seed49, capsys):
        assert main(["explain", str(seed49), "0x259"]) == 0
        out = capsys.readouterr().out
        assert "refuted SOFT trace" in out
        assert "strict soft-trace gate" in out

    def test_seed49_padding_guard(self, seed49, capsys):
        assert main(["explain", str(seed49), "0x37c"]) == 0
        out = capsys.readouterr().out
        assert "skip-realign" in out
        assert "padding-as-code guard" in out

    def test_bad_address_is_exit_2(self, generated, capsys):
        binary = str(generated.with_suffix(".bin"))
        assert main(["explain", binary, "zzz"]) == 2
        assert "bad address" in capsys.readouterr().err
        assert main(["explain", binary, "0x999999"]) == 2
        assert "outside the text section" in capsys.readouterr().err


class TestMetricsCommand:
    def test_local_prometheus_dump(self, generated, capsys):
        binary = str(generated.with_suffix(".bin"))
        assert main(["metrics", binary]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_superset_cache_total counter" in out
        assert "repro_traces_total" in out

    def test_local_json_dump(self, generated, capsys):
        binary = str(generated.with_suffix(".bin"))
        assert main(["metrics", binary, "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["repro_traces_total"]["kind"] == "counter"

    def test_requires_binary_or_server(self, capsys):
        assert main(["metrics"]) == 2
        assert "--server" in capsys.readouterr().err

    def test_unreachable_server_is_exit_1(self, capsys):
        assert main(["metrics", "--server", "127.0.0.1:1"]) == 1
        assert "metrics:" in capsys.readouterr().err


class TestTraceFlag:
    def test_disasm_trace_export_is_schema_valid(self, generated,
                                                 tmp_path, capsys):
        from repro.obs.schema import validate_jsonl
        path = tmp_path / "trace.jsonl"
        assert main(["disasm", str(generated.with_suffix(".bin")),
                     "--trace", str(path)]) == 0
        capsys.readouterr()
        summary = validate_jsonl(path)
        assert summary["traces"] == 1
        assert summary["dangling_parents"] == 0
        names = {json.loads(line)["name"]
                 for line in path.read_text().splitlines()}
        assert "disassemble" in names
        assert "superset" in names

    def test_env_var_activates_tracing(self, generated, tmp_path,
                                       monkeypatch, capsys):
        from repro.obs.schema import validate_jsonl
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        assert main(["disasm", str(generated.with_suffix(".bin"))]) == 0
        capsys.readouterr()
        assert validate_jsonl(path)["spans"] > 0
