"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli")
    prefix = directory / "demo"
    code = main(["generate", str(prefix), "--functions", "8",
                 "--seed", "5", "--style", "msvc-like"])
    assert code == 0
    return prefix


class TestGenerate:
    def test_writes_both_files(self, generated):
        assert generated.with_suffix(".bin").exists()
        assert (generated.parent / "demo.gt.json").exists()

    def test_output_message(self, tmp_path, capsys):
        main(["generate", str(tmp_path / "g"), "--functions", "5"])
        out = capsys.readouterr().out
        assert "text bytes" in out and "functions" in out


class TestDisasm:
    def test_summary_mode(self, generated, capsys):
        assert main(["disasm", str(generated.with_suffix(".bin"))]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "functions at:" in out

    def test_listing_mode(self, generated, capsys):
        code = main(["disasm", str(generated.with_suffix(".bin")),
                     "--listing"])
        assert code == 0
        out = capsys.readouterr().out
        assert "<func_0000>:" in out
        assert "push" in out


class TestEvaluate:
    def test_scores_against_ground_truth(self, generated, capsys):
        assert main(["evaluate", str(generated)]) == 0
        out = capsys.readouterr().out
        assert "instruction F1:" in out
        assert "byte errors:" in out


class TestLint:
    def test_text_output(self, generated, capsys):
        code = main(["lint", str(generated.with_suffix(".bin")),
                     "--fail-on", "never"])
        assert code == 0
        out = capsys.readouterr().out
        assert "diagnostics (" in out.splitlines()[-1]

    def test_json_schema(self, generated, capsys):
        main(["lint", str(generated.with_suffix(".bin")),
              "--format", "json", "--fail-on", "never"])
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"tool", "rules_run", "counts", "diagnostics"}
        assert report["tool"] == "repro"
        assert set(report["counts"]) == {"info", "warning", "error"}
        for diagnostic in report["diagnostics"]:
            assert set(diagnostic) == {"rule", "severity", "start", "end",
                                       "message", "suggestion"}

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 17
        assert any(line.startswith("orphan-code") for line in lines)

    def test_missing_binary_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "required" in capsys.readouterr().err

    def test_unknown_disable_is_usage_error(self, generated, capsys):
        code = main(["lint", str(generated.with_suffix(".bin")),
                     "--disable", "no-such-rule"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_fail_on_threshold_controls_exit(self, generated, capsys):
        binary = str(generated.with_suffix(".bin"))
        assert main(["lint", binary, "--fail-on", "never"]) == 0
        # The demo binary produces warnings but no errors.
        assert main(["lint", binary, "--fail-on", "error"]) == 0
        assert main(["lint", binary, "--fail-on", "info"]) == 1
        capsys.readouterr()


class TestExperimentsPassthrough:
    def test_unknown_id_fails(self):
        assert main(["experiments", "zzz"]) == 1


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_style(self):
        with pytest.raises(SystemExit):
            main(["generate", "x", "--style", "icc"])


class TestRealFormats:
    @pytest.fixture(scope="class")
    def elf_prefix(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-elf")
        prefix = directory / "real"
        code = main(["generate", str(prefix), "--functions", "6",
                     "--seed", "9", "--format", "elf"])
        assert code == 0
        return prefix

    def test_generate_elf_writes_elf(self, elf_prefix):
        elf = elf_prefix.with_suffix(".elf")
        assert elf.exists()
        assert elf.read_bytes()[:4] == b"\x7fELF"

    def test_disasm_accepts_elf(self, elf_prefix, capsys):
        code = main(["disasm", str(elf_prefix.with_suffix(".elf"))])
        assert code == 0
        assert "instructions" in capsys.readouterr().out

    def test_disasm_json_matches_rprb_path(self, elf_prefix, tmp_path,
                                           capsys):
        main(["generate", str(tmp_path / "real"), "--functions", "6",
              "--seed", "9"])
        capsys.readouterr()
        assert main(["disasm", "--json",
                     str(elf_prefix.with_suffix(".elf"))]) == 0
        via_elf = capsys.readouterr().out
        assert main(["disasm", "--json",
                     str(tmp_path / "real.bin")]) == 0
        assert via_elf == capsys.readouterr().out

    def test_lint_accepts_elf(self, elf_prefix, capsys):
        code = main(["lint", str(elf_prefix.with_suffix(".elf")),
                     "--format", "json"])
        assert code == 0
        assert "diagnostics" in capsys.readouterr().out

    def test_unrecognized_format_is_exit_2_one_line(self, tmp_path,
                                                    capsys):
        junk = tmp_path / "junk.bin"
        junk.write_bytes(b"\x00\x01\x02\x03 not a binary")
        assert main(["disasm", str(junk)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unrecognized format (magic=00010203)" in err
        assert main(["lint", str(junk)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unrecognized format" in err

    def test_truncated_elf_is_exit_2(self, elf_prefix, tmp_path, capsys):
        blob = elf_prefix.with_suffix(".elf").read_bytes()
        bad = tmp_path / "trunc.elf"
        bad.write_bytes(blob[:48])
        assert main(["disasm", str(bad)]) == 2
        assert "offset" in capsys.readouterr().err
