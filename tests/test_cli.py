"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli")
    prefix = directory / "demo"
    code = main(["generate", str(prefix), "--functions", "8",
                 "--seed", "5", "--style", "msvc-like"])
    assert code == 0
    return prefix


class TestGenerate:
    def test_writes_both_files(self, generated):
        assert generated.with_suffix(".bin").exists()
        assert (generated.parent / "demo.gt.json").exists()

    def test_output_message(self, tmp_path, capsys):
        main(["generate", str(tmp_path / "g"), "--functions", "5"])
        out = capsys.readouterr().out
        assert "text bytes" in out and "functions" in out


class TestDisasm:
    def test_summary_mode(self, generated, capsys):
        assert main(["disasm", str(generated.with_suffix(".bin"))]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "functions at:" in out

    def test_listing_mode(self, generated, capsys):
        code = main(["disasm", str(generated.with_suffix(".bin")),
                     "--listing"])
        assert code == 0
        out = capsys.readouterr().out
        assert "<func_0000>:" in out
        assert "push" in out


class TestEvaluate:
    def test_scores_against_ground_truth(self, generated, capsys):
        assert main(["evaluate", str(generated)]) == 0
        out = capsys.readouterr().out
        assert "instruction F1:" in out
        assert "byte errors:" in out


class TestExperimentsPassthrough:
    def test_unknown_id_fails(self):
        assert main(["experiments", "zzz"]) == 1


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_style(self):
        with pytest.raises(SystemExit):
            main(["generate", "x", "--style", "icc"])
