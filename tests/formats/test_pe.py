"""PE32+ parser: golden fixture, exception-directory hints, fuzz."""

from __future__ import annotations

import random
import struct

import pytest

from repro.formats import FormatError, load_any, parse_pe

from .fixtures.make_fixtures import (PE_IMAGE_BASE, PE_RUNTIME_FUNCTIONS,
                                     PE_TEXT_RVA, TEXT)

_OPT = 0x80 + 4 + 20                     # optional-header file offset


class TestGoldenFixture:
    def test_sections_and_entry(self, pe_fixture):
        image = parse_pe(pe_fixture)
        binary = image.binary
        assert binary.entry == PE_IMAGE_BASE + PE_TEXT_RVA
        text = binary.text
        assert text.addr == PE_IMAGE_BASE + PE_TEXT_RVA
        assert text.data == TEXT         # VirtualSize-clipped, not raw
        assert not binary.section(".pdata").executable

    def test_image_base(self, pe_fixture):
        assert parse_pe(pe_fixture).hints.image_base == PE_IMAGE_BASE

    def test_runtime_function_hints(self, pe_fixture):
        hints = parse_pe(pe_fixture).hints
        expected = tuple((PE_IMAGE_BASE + begin, PE_IMAGE_BASE + end)
                         for begin, end in PE_RUNTIME_FUNCTIONS)
        assert hints.function_ranges == expected

    def test_hint_text_offsets(self, pe_fixture):
        image = parse_pe(pe_fixture)
        text = image.binary.text
        offsets = image.hints.text_ranges(text.addr, text.size)
        assert offsets == tuple(
            (begin - PE_TEXT_RVA, end - PE_TEXT_RVA)
            for begin, end in PE_RUNTIME_FUNCTIONS)


class TestRejection:
    def test_pe32_rejected(self, pe_fixture):
        blob = bytearray(pe_fixture)
        struct.pack_into("<H", blob, _OPT, 0x10B)   # PE32 magic
        with pytest.raises(FormatError, match="PE32\\+"):
            parse_pe(bytes(blob))

    def test_bad_pe_signature(self, pe_fixture):
        blob = bytearray(pe_fixture)
        blob[0x80:0x84] = b"PF\0\0"
        with pytest.raises(FormatError, match="signature"):
            parse_pe(bytes(blob))

    def test_bad_lfanew(self, pe_fixture):
        blob = bytearray(pe_fixture)
        struct.pack_into("<I", blob, 0x3C, len(blob) + 100)
        with pytest.raises(FormatError):
            parse_pe(bytes(blob))

    def test_inverted_runtime_function(self, pe_fixture):
        # pdata raw data starts at 0x600: make end <= begin.
        blob = bytearray(pe_fixture)
        struct.pack_into("<II", blob, 0x600, 0x1010, 0x1005)
        with pytest.raises(FormatError, match="RUNTIME_FUNCTION"):
            parse_pe(bytes(blob))

    def test_exception_dir_outside_sections(self, pe_fixture):
        blob = bytearray(pe_fixture)
        struct.pack_into("<II", blob, _OPT + 112 + 8 * 3, 0x9000, 24)
        with pytest.raises(FormatError, match="not mapped"):
            parse_pe(bytes(blob))

    def test_hostile_virtual_size_bounded(self, pe_fixture):
        table = _OPT + 240               # first section header
        blob = bytearray(pe_fixture)
        struct.pack_into("<I", blob, table + 8, 0xFFFFFFFF)  # VirtualSize
        with pytest.raises(FormatError, match="VirtualSize"):
            parse_pe(bytes(blob))


class TestFuzzSoundness:
    def test_every_truncation(self, pe_fixture):
        for cut in range(len(pe_fixture)):
            try:
                parse_pe(pe_fixture[:cut])
            except FormatError:
                pass

    def test_random_corruption(self, pe_fixture):
        rng = random.Random(4321)
        for _ in range(500):
            blob = bytearray(pe_fixture)
            for _ in range(rng.randint(1, 8)):
                blob[rng.randrange(len(blob))] = rng.randrange(256)
            try:
                load_any(bytes(blob))
            except FormatError:
                pass
