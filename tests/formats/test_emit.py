"""ELF emitter: determinism, well-formedness, exact round-trip."""

from __future__ import annotations

import struct

import pytest

from repro.binary.container import Binary, Section
from repro.formats import emit_elf, load_any, parse_elf
from repro.synth import BinarySpec, STYLES, generate_binary


def small_binary() -> Binary:
    return Binary(
        sections=[Section(".text", 0x1000,
                          b"\x55\x48\x89\xe5\x5d\xc3" + b"\xcc" * 10,
                          executable=True),
                  Section(".rodata", 0x2000, b"abc\0" * 4)],
        entry=0x1000)


class TestEmit:
    def test_deterministic(self):
        binary = small_binary()
        assert emit_elf(binary) == emit_elf(binary)

    def test_magic_and_type(self):
        blob = emit_elf(small_binary())
        assert blob[:4] == b"\x7fELF"
        assert struct.unpack_from("<H", blob, 16)[0] == 2   # ET_EXEC

    def test_offset_vaddr_congruence(self):
        """p_offset must be congruent to p_vaddr mod the page size --
        the System V ABI requirement for mappable segments."""
        blob = emit_elf(small_binary())
        phoff, = struct.unpack_from("<Q", blob, 32)
        phnum, = struct.unpack_from("<H", blob, 56)
        for index in range(phnum):
            (_type, _flags, offset, vaddr, _pa, _fs, _ms, align) = \
                struct.unpack_from("<IIQQQQQQ", blob, phoff + index * 56)
            assert offset % 0x1000 == vaddr % 0x1000

    def test_no_sections_rejected(self):
        with pytest.raises(ValueError, match="no sections"):
            emit_elf(Binary(sections=[], entry=0))


class TestRoundTrip:
    def test_small_binary_exact(self):
        binary = small_binary()
        parsed = parse_elf(emit_elf(binary)).binary
        assert parsed.sections == binary.sections
        assert parsed.entry == binary.entry
        assert parsed.to_bytes() == binary.to_bytes()

    @pytest.mark.parametrize("style_name", sorted(STYLES))
    def test_synth_corpus_exact(self, style_name):
        case = generate_binary(BinarySpec(name="emit-rt",
                                          style=STYLES[style_name],
                                          function_count=8, seed=11))
        image = load_any(emit_elf(case.binary))
        assert image.format == "elf64"
        assert image.binary.sections == case.binary.sections
        assert image.binary.entry == case.binary.entry
        # Canonical container serialization is byte-identical, so the
        # serving cache keys the two ingestion paths the same way.
        assert image.binary.to_bytes() == case.binary.to_bytes()

    def test_header_stripped_round_trip(self, msvc_case, msvc_elf):
        """Zeroing the section-header fields (sstrip) still yields the
        same text bytes and entry via the PT_LOAD fallback."""
        blob = bytearray(msvc_elf)
        struct.pack_into("<Q", blob, 40, 0)     # e_shoff
        struct.pack_into("<H", blob, 60, 0)     # e_shnum
        struct.pack_into("<H", blob, 62, 0)     # e_shstrndx
        image = load_any(bytes(blob))
        assert "section headers stripped; mapped from PT_LOAD" \
            in image.hints.notes
        assert image.binary.text.data == msvc_case.binary.text.data
        assert image.binary.entry == msvc_case.binary.entry
