"""formats -> disassembler / linter integration."""

from __future__ import annotations

from repro.formats import FormatHints, emit_elf, load_any
from repro.lint import lint_disassembly
from repro.result import DisassemblyResult


class TestDisassemblerIngestion:
    def test_elf_path_matches_container_path(self, msvc_case,
                                             disassembler):
        native = disassembler.disassemble(msvc_case.binary)
        image = load_any(emit_elf(msvc_case.binary))
        reingested = disassembler.disassemble(image.binary)
        assert reingested.to_json() == native.to_json()

    def test_fixture_elf_disassembles(self, elf_fixture, disassembler):
        image = load_any(elf_fixture)
        result = disassembler.disassemble(image.binary)
        # The fixture's entry function must be recovered: entry offset
        # 0 starts an instruction.
        assert 0 in result.instruction_starts

    def test_fixture_pe_disassembles(self, pe_fixture, disassembler):
        image = load_any(pe_fixture)
        result = disassembler.disassemble(image.binary)
        assert 0 in result.instruction_starts


class TestHintLinting:
    def test_agreeing_hints_stay_silent(self, pe_fixture, disassembler):
        image = load_any(pe_fixture)
        result = disassembler.disassemble(image.binary)
        text = image.binary.text
        report = lint_disassembly(result, text.data, hints=image.hints,
                                  text_addr=text.addr)
        assert "hint-disagreement" in report.rules_run
        disagreements = [d for d in report
                         if d.rule == "hint-disagreement"]
        # Function 2 of the fixture starts at offset 0x10; the
        # disassembler reaches it only if it looks like code, so allow
        # zero-or-more -- the key property is the *contradiction* case
        # below, plus soundness on claims that match the metadata.
        for diagnostic in disagreements:
            assert diagnostic.suggestion == "code"

    def test_contradicted_hint_is_reported(self):
        text = b"\x55\x48\x89\xe5\x5d\xc3\xcc\xcc"
        hints = FormatHints(format="pe32+", image_base=0x1000,
                            function_ranges=((0x1000, 0x1006),))
        claim = DisassemblyResult(tool="bogus", instructions={},
                                  data_regions=[(0, 8)])
        report = lint_disassembly(claim, text, hints=hints,
                                  text_addr=0x1000)
        disagreements = [d for d in report
                         if d.rule == "hint-disagreement"]
        assert len(disagreements) == 1
        assert disagreements[0].start == 0
        assert "claimed as data" in disagreements[0].message

    def test_no_hints_no_rule_output(self, msvc_case, disassembler):
        result = disassembler.disassemble(msvc_case.binary)
        report = lint_disassembly(result, msvc_case.text)
        assert all(d.rule != "hint-disagreement" for d in report)


class TestHintGeometry:
    def test_text_ranges_clip(self):
        hints = FormatHints(format="elf64",
                            function_ranges=((0x0FF0, 0x1008),
                                             (0x1010, 0x1020),
                                             (0x2000, 0x3000)))
        assert hints.text_ranges(0x1000, 0x100) == \
            ((0, 8), (0x10, 0x20))

    def test_empty(self):
        assert FormatHints(format="elf64").empty
        assert not FormatHints(format="elf64",
                               entry_candidates=(1,)).empty
