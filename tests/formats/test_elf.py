"""ELF64 parser: golden fixture, stripped fallback, fuzz soundness."""

from __future__ import annotations

import random
import struct

import pytest

from repro.formats import FormatError, load_any, parse_elf
from repro.formats.elf import MAX_HEADERS

from .fixtures.make_fixtures import (ELF_RODATA_VADDR, ELF_TEXT_VADDR,
                                     RODATA, TEXT)


class TestGoldenFixture:
    """hello.elf is hand-assembled and header-stripped (no shdrs)."""

    def test_sections_and_entry(self, elf_fixture):
        image = parse_elf(elf_fixture)
        binary = image.binary
        assert binary.entry == ELF_TEXT_VADDR
        text = binary.text
        assert text.addr == ELF_TEXT_VADDR
        assert text.data == TEXT
        assert text.executable
        rodata = binary.section_at(ELF_RODATA_VADDR)
        assert rodata is not None and not rodata.executable
        assert rodata.data == RODATA

    def test_stripped_note_and_base(self, elf_fixture):
        image = parse_elf(elf_fixture)
        assert "section headers stripped; mapped from PT_LOAD" \
            in image.hints.notes
        assert image.hints.image_base == ELF_TEXT_VADDR

    def test_entry_offset_is_zero(self, elf_fixture):
        # entry - text.addr is what the disassembler anchors on.
        binary = parse_elf(elf_fixture).binary
        assert binary.entry - binary.text.addr == 0


class TestRejection:
    def test_elf32_rejected(self, elf_fixture):
        blob = bytearray(elf_fixture)
        blob[4] = 1                      # EI_CLASS = ELFCLASS32
        with pytest.raises(FormatError, match="ELF class"):
            parse_elf(bytes(blob))

    def test_big_endian_rejected(self, elf_fixture):
        blob = bytearray(elf_fixture)
        blob[5] = 2                      # EI_DATA = ELFDATA2MSB
        with pytest.raises(FormatError, match="byte order"):
            parse_elf(bytes(blob))

    def test_relocatable_rejected(self, elf_fixture):
        blob = bytearray(elf_fixture)
        struct.pack_into("<H", blob, 16, 1)   # ET_REL
        with pytest.raises(FormatError, match="object type"):
            parse_elf(bytes(blob))

    def test_implausible_phnum(self, elf_fixture):
        blob = bytearray(elf_fixture)
        struct.pack_into("<H", blob, 56, MAX_HEADERS + 1)
        with pytest.raises(FormatError, match="e_phnum"):
            parse_elf(bytes(blob))

    def test_hostile_memsz_bounded(self, elf_fixture):
        # p_memsz of the first phdr (offset 64 + 40) -> petabytes.
        blob = bytearray(elf_fixture)
        struct.pack_into("<Q", blob, 64 + 40, 1 << 50)
        with pytest.raises(FormatError, match="p_memsz"):
            parse_elf(bytes(blob))

    def test_no_loadable_content(self, elf_fixture):
        blob = bytearray(elf_fixture)
        struct.pack_into("<H", blob, 56, 0)   # e_phnum = 0 (and no shdrs)
        with pytest.raises(FormatError, match="no loadable content"):
            parse_elf(bytes(blob))


class TestFuzzSoundness:
    """Malformed input raises FormatError -- never a raw struct/index
    error -- for truncations and random header corruption."""

    def test_every_truncation(self, elf_fixture):
        for cut in range(0, 0x1000 + len(TEXT), 13):
            try:
                parse_elf(elf_fixture[:cut])
            except FormatError:
                pass

    def test_random_header_corruption(self, elf_fixture):
        rng = random.Random(1234)
        for _ in range(150):
            blob = bytearray(elf_fixture)
            for _ in range(rng.randint(1, 8)):
                blob[rng.randrange(0x200)] = rng.randrange(256)
            try:
                load_any(bytes(blob))
            except FormatError:
                pass

    def test_random_corruption_of_emitted_elf(self, msvc_elf):
        # The emitter's output has section headers, exercising the
        # other parse path under corruption.
        rng = random.Random(99)
        for _ in range(300):
            blob = bytearray(msvc_elf)
            for _ in range(rng.randint(1, 6)):
                blob[rng.randrange(len(blob))] = rng.randrange(256)
            cut = rng.randrange(len(blob)) if rng.random() < 0.5 \
                else len(blob)
            try:
                load_any(bytes(blob[:cut]))
            except FormatError:
                pass


class TestNormalization:
    def test_multiple_exec_sections_merge(self, elf_fixture):
        # Split the single R+X segment into two adjacent R+X segments
        # (like .init + .text): the loader must merge them into one
        # executable region.
        blob = bytearray(elf_fixture)
        # phdr0: [0x1000, 0x1000+8) X; phdr1: rewrite rodata phdr as
        # a second exec segment covering the rest of TEXT.
        struct.pack_into("<IIQQQQQQ", blob, 64, 1, 0x5, 0x1000,
                         ELF_TEXT_VADDR, ELF_TEXT_VADDR, 8, 8, 0x1000)
        struct.pack_into("<IIQQQQQQ", blob, 64 + 56, 1, 0x5, 0x1008,
                         ELF_TEXT_VADDR + 8, ELF_TEXT_VADDR + 8,
                         len(TEXT) - 8, len(TEXT) - 8, 0x1000)
        image = parse_elf(bytes(blob))
        text = image.binary.text
        assert text.addr == ELF_TEXT_VADDR
        assert text.data == TEXT
        assert any("merged 2 executable sections" in note
                   for note in image.hints.notes)

    def test_overlapping_exec_sections_rejected(self, elf_fixture):
        blob = bytearray(elf_fixture)
        struct.pack_into("<IIQQQQQQ", blob, 64 + 56, 1, 0x5, 0x1000,
                         ELF_TEXT_VADDR + 4, ELF_TEXT_VADDR + 4,
                         len(TEXT), len(TEXT), 0x1000)
        with pytest.raises(FormatError, match="overlap"):
            parse_elf(bytes(blob))
