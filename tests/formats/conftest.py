"""Shared fixtures for the binary-format tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.formats import emit_elf

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="session")
def elf_fixture() -> bytes:
    return (FIXTURES / "hello.elf").read_bytes()


@pytest.fixture(scope="session")
def pe_fixture() -> bytes:
    return (FIXTURES / "hello.dll").read_bytes()


@pytest.fixture(scope="session")
def msvc_elf(msvc_case) -> bytes:
    """The session msvc test binary emitted as a real ELF64 file."""
    return emit_elf(msvc_case.binary)
