"""Magic-byte detection and the load_any dispatch contract."""

from __future__ import annotations

import pytest

from repro.binary.container import Binary, Section
from repro.formats import (FORMAT_NAMES, FormatError, detect_format,
                           load_any)


class TestDetect:
    def test_rprb(self, msvc_case):
        assert detect_format(msvc_case.binary.to_bytes()) == "rprb"

    def test_elf(self, elf_fixture):
        assert detect_format(elf_fixture) == "elf64"

    def test_pe(self, pe_fixture):
        assert detect_format(pe_fixture) == "pe32+"

    def test_unrecognized_magic_message(self):
        with pytest.raises(FormatError, match=r"unrecognized format "
                                              r"\(magic=64656164\)"):
            detect_format(b"dead beef")

    def test_empty_blob(self):
        with pytest.raises(FormatError, match="magic=empty"):
            detect_format(b"")

    def test_format_names_cover_signatures(self):
        assert set(FORMAT_NAMES) == {"auto", "rprb", "elf64", "pe32+"}


class TestLoadAny:
    def test_auto_detects_all_three(self, msvc_case, elf_fixture,
                                    pe_fixture):
        assert load_any(msvc_case.binary.to_bytes()).format == "rprb"
        assert load_any(elf_fixture).format == "elf64"
        assert load_any(pe_fixture).format == "pe32+"

    def test_explicit_format_accepted(self, elf_fixture):
        assert load_any(elf_fixture, fmt="elf64").format == "elf64"

    def test_declared_format_must_match_magic(self, elf_fixture):
        with pytest.raises(FormatError, match="declared format 'pe32\\+' "
                                              "but magic says 'elf64'"):
            load_any(elf_fixture, fmt="pe32+")

    def test_unknown_format_name(self, elf_fixture):
        with pytest.raises(FormatError, match="unknown format 'macho'"):
            load_any(elf_fixture, fmt="macho")

    def test_rprb_round_trip(self, msvc_case):
        image = load_any(msvc_case.binary.to_bytes())
        assert image.binary == msvc_case.binary
        assert image.hints.empty

    def test_corrupt_rprb_is_format_error(self):
        blob = Binary(sections=[Section(".text", 0, b"\xc3",
                                        executable=True)]).to_bytes()
        with pytest.raises(FormatError, match="RPRB"):
            load_any(blob[:-1])
