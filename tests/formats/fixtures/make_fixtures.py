"""Regenerate the hand-assembled golden fixtures in this directory.

Run from the repository root::

    python tests/formats/fixtures/make_fixtures.py

The fixtures are deliberately built with raw ``struct`` packing --
*not* with :mod:`repro.formats.emit_elf` -- so the golden-file tests
exercise the parsers against independently constructed input, and a
bug that makes emitter and parser wrong in compatible ways cannot hide.

``hello.elf``
    Minimal ELF64 ``ET_EXEC``: two ``PT_LOAD`` segments (R+X text at
    0x401000, R-- rodata at 0x402000), *no* section-header table --
    the fully stripped shape (``sstrip``) that forces the program-
    header fallback path.

``hello.dll``
    Minimal PE32+ DLL: ``.text`` (execute) at RVA 0x1000, ``.pdata``
    (read) at RVA 0x2000 holding two ``RUNTIME_FUNCTION`` records
    pointing back into ``.text``, image base 0x180000000.
"""

from __future__ import annotations

import struct
from pathlib import Path

HERE = Path(__file__).parent

# A real x86-64 function: push rbp; mov rbp,rsp; mov eax,60;
# xor edi,edi; syscall; pop rbp; ret -- then int3 padding.
TEXT = bytes.fromhex("554889e5b83c00000031ff0f055dc3") + b"\xcc" * 17
RODATA = b"hello, world\0\0\0\0"

ELF_TEXT_VADDR = 0x401000
ELF_RODATA_VADDR = 0x402000

PE_IMAGE_BASE = 0x180000000
PE_TEXT_RVA = 0x1000
PE_PDATA_RVA = 0x2000
#: (BeginAddress, EndAddress) RVAs of the two fixture functions.
PE_RUNTIME_FUNCTIONS = ((0x1000, 0x100F), (0x1010, 0x1015))


def make_elf() -> bytes:
    ehdr = struct.pack(
        "<4sBBBB8xHHIQQQIHHHHHH",
        b"\x7fELF", 2, 1, 1, 0,          # ELF64, LSB, current, SysV
        2, 62, 1,                        # ET_EXEC, EM_X86_64, EV_CURRENT
        ELF_TEXT_VADDR,                  # e_entry
        64, 0, 0,                        # e_phoff, e_shoff, e_flags
        64, 56, 2,                       # e_ehsize, e_phentsize, e_phnum
        0, 0, 0)                         # e_shentsize, e_shnum, e_shstrndx

    def phdr(flags: int, offset: int, vaddr: int, size: int) -> bytes:
        return struct.pack("<IIQQQQQQ", 1, flags, offset, vaddr, vaddr,
                           size, size, 0x1000)

    out = bytearray(ehdr)
    out += phdr(0x5, 0x1000, ELF_TEXT_VADDR, len(TEXT))      # R+X
    out += phdr(0x4, 0x2000, ELF_RODATA_VADDR, len(RODATA))  # R
    out += b"\0" * (0x1000 - len(out))
    out += TEXT
    out += b"\0" * (0x2000 - len(out))
    out += RODATA
    return bytes(out)


def make_pe() -> bytes:
    pdata = b"".join(struct.pack("<III", begin, end, 0)
                     for begin, end in PE_RUNTIME_FUNCTIONS)

    dos = bytearray(64)
    dos[:2] = b"MZ"
    struct.pack_into("<I", dos, 0x3C, 0x80)      # e_lfanew
    out = bytearray(dos) + bytearray(0x80 - 64)
    out += b"PE\0\0"
    out += struct.pack("<HHIIIHH",
                       0x8664, 2, 0, 0, 0,       # x86-64, 2 sections
                       240, 0x2022)              # opt size, DLL | EXEC

    opt = bytearray(240)
    struct.pack_into("<H", opt, 0, 0x20B)        # PE32+ magic
    struct.pack_into("<I", opt, 16, PE_TEXT_RVA)     # AddressOfEntryPoint
    struct.pack_into("<Q", opt, 24, PE_IMAGE_BASE)   # ImageBase
    struct.pack_into("<I", opt, 108, 16)             # NumberOfRvaAndSizes
    struct.pack_into("<II", opt, 112 + 8 * 3,        # exception directory
                     PE_PDATA_RVA, len(pdata))
    out += opt

    def section(name: bytes, vsize: int, rva: int, rsize: int,
                roff: int, characteristics: int) -> bytes:
        return struct.pack("<8sIIIIIIHHI", name, vsize, rva, rsize,
                           roff, 0, 0, 0, 0, characteristics)

    # IMAGE_SCN_CNT_CODE | MEM_EXECUTE | MEM_READ
    out += section(b".text", len(TEXT), PE_TEXT_RVA, 0x200, 0x400,
                   0x60000020)
    # IMAGE_SCN_CNT_INITIALIZED_DATA | MEM_READ
    out += section(b".pdata", len(pdata), PE_PDATA_RVA, 0x200, 0x600,
                   0x40000040)
    out += bytearray(0x400 - len(out))
    out += TEXT.ljust(0x200, b"\0")
    out += pdata.ljust(0x200, b"\0")
    return bytes(out)


def main() -> None:
    (HERE / "hello.elf").write_bytes(make_elf())
    (HERE / "hello.dll").write_bytes(make_pe())
    print(f"wrote {HERE / 'hello.elf'} ({len(make_elf())} bytes)")
    print(f"wrote {HERE / 'hello.dll'} ({len(make_pe())} bytes)")


if __name__ == "__main__":
    main()
