"""Tests for the data byte model and structural detectors."""

import math

from repro.stats.datamodel import (DataByteModel, find_ascii_runs,
                                   find_jump_tables, find_padding_runs)


class TestDataByteModel:
    def test_trained_bytes_score_higher(self):
        model = DataByteModel()
        model.train([b"\x00" * 100])
        assert model.log_prob_byte(0) > model.log_prob_byte(0x37)

    def test_untrained_model_is_uniform(self):
        model = DataByteModel()
        assert model.log_prob_byte(0) == model.log_prob_byte(255)

    def test_log_prob_sums(self):
        model = DataByteModel()
        model.train([b"abc"])
        assert model.log_prob(b"ab") == (model.log_prob_byte(ord("a"))
                                         + model.log_prob_byte(ord("b")))

    def test_round_trip(self):
        model = DataByteModel()
        model.train([b"hello world" * 10])
        restored = DataByteModel.from_json(model.to_json())
        assert restored.log_prob(b"hello") == model.log_prob(b"hello")

    def test_probabilities_normalize(self):
        model = DataByteModel()
        model.train([bytes(range(256))])
        total = sum(math.exp(model.log_prob_byte(b)) for b in range(256))
        assert abs(total - 1.0) < 1e-9


class TestJumpTableDetector:
    def test_detects_absolute_table(self):
        text = bytearray(b"\x90" * 64)
        for i, target in enumerate((4, 8, 12, 16)):
            text[24 + 8 * i:32 + 8 * i] = target.to_bytes(8, "little")
        tables = find_jump_tables(bytes(text))
        eight = [t for t in tables if t.entry_size == 8]
        assert any(t.start == 24 and t.entry_count >= 4 for t in eight)
        found = next(t for t in eight if t.start == 24)
        assert set(found.targets) >= {4, 8, 12, 16}

    def test_detects_relative_table(self):
        text = bytearray(b"\x90" * 64)
        base = 32
        for i, target in enumerate((4, 8, 12)):
            delta = (target - base) & 0xFFFFFFFF
            text[base + 4 * i:base + 4 * i + 4] = delta.to_bytes(4, "little")
        tables = find_jump_tables(bytes(text))
        four = [t for t in tables if t.entry_size == 4 and t.start == base]
        assert four and four[0].targets == (4, 8, 12)

    def test_min_entries_respected(self):
        text = bytearray(b"\x90" * 32)
        text[8:16] = (4).to_bytes(8, "little")
        text[16:24] = (8).to_bytes(8, "little")
        assert not [t for t in find_jump_tables(bytes(text), min_entries=3)
                    if t.entry_size == 8 and t.start == 8]

    def test_target_filter(self):
        text = bytearray(b"\x90" * 64)
        for i, target in enumerate((4, 8, 12, 16)):
            text[24 + 8 * i:32 + 8 * i] = target.to_bytes(8, "little")
        tables = find_jump_tables(bytes(text),
                                  is_plausible_target=lambda t: t != 8)
        assert not any(t.start == 24 and t.entry_count >= 4 for t in tables)

    def test_out_of_range_values_break_runs(self):
        text = bytearray(b"\x90" * 48)
        text[0:8] = (4).to_bytes(8, "little")
        text[8:16] = (10 ** 12).to_bytes(8, "little")
        text[16:24] = (8).to_bytes(8, "little")
        assert not [t for t in find_jump_tables(bytes(text))
                    if t.entry_size == 8 and t.start == 0
                    and t.entry_count >= 3]

    def test_finds_real_tables(self, msvc_case):
        """Ground-truth jump tables are recovered on a real binary."""
        tables = find_jump_tables(msvc_case.text)
        detected = set()
        for table in tables:
            detected.update(range(table.start, table.end))
        covered = 0
        total = 0
        for start, end in msvc_case.truth.jump_tables:
            total += end - start
            covered += sum(1 for o in range(start, end) if o in detected)
        assert covered / total > 0.8


class TestAsciiRuns:
    def test_detects_string(self):
        text = b"\x48\x89\xe5" + b"hello world!\x00" + b"\xc3"
        runs = find_ascii_runs(text)
        assert any(run.start == 3 and run.length >= 12 for run in runs)

    def test_min_length(self):
        assert not find_ascii_runs(b"\x01hi\x01", min_length=6)

    def test_terminator_included(self):
        runs = find_ascii_runs(b"\x01abcdefgh\x00\x01")
        assert runs and runs[0].end == 10

    def test_run_at_end_of_text(self):
        runs = find_ascii_runs(b"\x01abcdefgh")
        assert runs and runs[0].end == 9


class TestPaddingRuns:
    def test_int3_run(self):
        runs = find_padding_runs(b"\xc3" + b"\xcc" * 7 + b"\x55")
        assert (1, 8) in runs

    def test_mixed_padding_bytes_split(self):
        runs = find_padding_runs(b"\xcc\xcc\xcc\x00\x00\x00")
        assert (0, 3) in runs and (3, 6) in runs

    def test_short_runs_ignored(self):
        assert not find_padding_runs(b"\x90\xcc\x90", min_length=2)

    def test_run_to_end(self):
        runs = find_padding_runs(b"\x90" + b"\x00" * 5)
        assert (1, 6) in runs
