"""Tests for the on-disk model cache (`repro.stats.cache`)."""

import json

import pytest

from repro.stats import cache
from repro.stats.datamodel import DataByteModel
from repro.stats.ngram import NgramModel, START
from repro.stats.training import default_models, default_training_key


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_MODEL_CACHE", raising=False)
    return tmp_path


def small_models() -> tuple[NgramModel, DataByteModel]:
    code = NgramModel()
    code.train([["push:r64", "mov:r64r64", "sub:r64i"],
                ["push:r64", "ret:"]])
    data = DataByteModel()
    data.train([bytes(16), b"hello world\x00"])
    return code, data


class TestRoundTrip:
    def test_save_then_load_is_exact(self, tmp_cache):
        code, data = small_models()
        cache.save_models("k1", code, data)
        loaded = cache.load_models("k1")
        assert loaded is not None
        loaded_code, loaded_data = loaded
        assert loaded_code.weights == code.weights
        assert loaded_code.total == code.total
        assert dict(loaded_code.unigrams) == dict(code.unigrams)
        assert dict(loaded_code.bigrams) == dict(code.bigrams)
        assert dict(loaded_code.trigrams) == dict(code.trigrams)
        assert dict(loaded_code.bigram_context) == dict(code.bigram_context)
        assert (dict(loaded_code.trigram_context)
                == dict(code.trigram_context))
        assert loaded_data.counts == data.counts
        assert loaded_data.total == data.total

    def test_loaded_model_scores_identically(self, tmp_cache):
        code, data = small_models()
        cache.save_models("k2", code, data)
        loaded_code, loaded_data = cache.load_models("k2")
        queries = [("push:r64", (START, START)),
                   ("mov:r64r64", (START, "push:r64")),
                   ("never-seen:", ("push:r64", "mov:r64r64"))]
        for token, context in queries:
            assert loaded_code.log_prob(token, context) \
                == code.log_prob(token, context)
        assert loaded_data.log_prob(b"\x00hello") == data.log_prob(b"\x00hello")


class TestMissAndCorruption:
    def test_missing_key_is_a_miss(self, tmp_cache):
        assert cache.load_models("nope") is None

    def test_corrupt_file_is_a_miss(self, tmp_cache):
        cache.model_path("bad").parent.mkdir(parents=True, exist_ok=True)
        cache.model_path("bad").write_text("{not json")
        assert cache.load_models("bad") is None

    def test_version_mismatch_is_a_miss(self, tmp_cache):
        code, data = small_models()
        path = cache.save_models("old", code, data)
        raw = json.loads(path.read_text())
        raw["version"] = -1
        path.write_text(json.dumps(raw))
        assert cache.load_models("old") is None

    def test_cache_disabled_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MODEL_CACHE", "1")
        assert cache.cache_disabled()
        monkeypatch.setenv("REPRO_NO_MODEL_CACHE", "0")
        assert not cache.cache_disabled()


class TestStableDigest:
    def test_digest_independent_of_key_order(self):
        assert cache.stable_digest({"a": 1, "b": [2, 3]}) \
            == cache.stable_digest({"b": [2, 3], "a": 1})

    def test_digest_sensitive_to_values_and_length_knob(self):
        a = cache.stable_digest({"a": 1})
        assert a != cache.stable_digest({"a": 2})
        assert len(a) == 16
        assert len(cache.stable_digest({"a": 1}, length=8)) == 8
        assert cache.stable_digest({"a": 1}, length=8) == a[:8]


class TestTrainingKey:
    def test_key_is_stable(self):
        a = cache.training_key((1, 2), 40, (0.5, 0.3, 0.19, 0.01), 0.5)
        b = cache.training_key((1, 2), 40, (0.5, 0.3, 0.19, 0.01), 0.5)
        assert a == b

    def test_key_depends_on_config(self):
        a = cache.training_key((1, 2), 40, (0.5, 0.3, 0.19, 0.01), 0.5)
        b = cache.training_key((1, 3), 40, (0.5, 0.3, 0.19, 0.01), 0.5)
        c = cache.training_key((1, 2), 41, (0.5, 0.3, 0.19, 0.01), 0.5)
        assert len({a, b, c}) == 3

    def test_config_change_invalidates_cached_entry(self, tmp_cache):
        # A model pair saved under one training config must be a load
        # miss for any different config -- key-level invalidation is
        # the only staleness defense the cache has.
        code, data = small_models()
        old_key = cache.training_key((1, 2), 40,
                                     (0.5, 0.3, 0.19, 0.01), 0.5)
        cache.save_models(old_key, code, data)
        new_key = cache.training_key((1, 2), 40,
                                     (0.5, 0.3, 0.19, 0.01), 0.6)
        assert new_key != old_key
        assert cache.load_models(old_key) is not None
        assert cache.load_models(new_key) is None


class TestDefaultModels:
    def test_default_models_round_trip_through_disk(self, tmp_cache):
        default_models.cache_clear()
        try:
            trained = default_models()          # trains, writes the cache
            key = default_training_key()
            assert cache.model_path(key).exists()
            loaded = cache.load_models(key)
            assert loaded is not None
            code, data = loaded
            assert dict(code.unigrams) == dict(trained.code.unigrams)
            assert dict(code.trigrams) == dict(trained.code.trigrams)
            assert data.counts == trained.data.counts

            default_models.cache_clear()
            reloaded = default_models()         # must hit the disk cache
            assert (dict(reloaded.code.trigrams)
                    == dict(trained.code.trigrams))
            assert reloaded.data.total == trained.data.total
        finally:
            default_models.cache_clear()
