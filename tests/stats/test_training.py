"""Tests for model training from labeled corpora."""

from repro.eval.dataset import EVAL_SEEDS
from repro.stats.training import (TRAINING_SEEDS, data_regions,
                                  default_models, token_sequences,
                                  train_models)
from repro.synth import BinarySpec, GCC_LIKE, MSVC_LIKE, generate_binary


class TestTrainTestSplit:
    def test_training_seeds_disjoint_from_eval(self):
        assert not set(TRAINING_SEEDS) & set(EVAL_SEEDS)


class TestSequenceExtraction:
    def test_sequences_per_function(self, msvc_case):
        sequences = token_sequences(msvc_case)
        assert len(sequences) == len(msvc_case.truth.functions)
        assert all(sequences)

    def test_data_regions_extracted(self, msvc_case):
        regions = data_regions(msvc_case)
        assert sum(len(r) for r in regions) == msvc_case.truth.data_bytes


class TestTraining:
    def test_models_are_nonempty(self):
        case = generate_binary(BinarySpec(name="t", style=MSVC_LIKE,
                                          function_count=8, seed=99))
        models = train_models([case])
        assert models.code.total > 0
        assert models.data.total > 0

    def test_clean_corpus_gets_fallback_data_model(self):
        case = generate_binary(BinarySpec(name="t", style=GCC_LIKE,
                                          function_count=8, seed=99))
        assert case.truth.data_bytes == 0
        models = train_models([case])
        assert models.data.total > 0    # the informative prior kicked in

    def test_default_models_cached(self):
        assert default_models() is default_models()
