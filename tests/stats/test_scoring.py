"""Tests for the combined statistical scorer."""

import numpy as np

from repro.stats.scoring import StatisticalScorer, UNDECODABLE_SCORE
from repro.superset import Superset


class TestScoreAll:
    def test_vector_shape(self, models, msvc_case, msvc_superset):
        scorer = StatisticalScorer(models.code, models.data)
        scores = scorer.score_all(msvc_superset)
        assert scores.shape == (len(msvc_case.text),)

    def test_invalid_offsets_get_floor_score(self, models):
        scorer = StatisticalScorer(models.code, models.data)
        superset = Superset.build(b"\x06\x90\xc3")
        scores = scorer.score_all(superset)
        assert scores[0] == UNDECODABLE_SCORE

    def test_score_all_matches_score_offset(self, models, msvc_superset):
        scorer = StatisticalScorer(models.code, models.data)
        scores = scorer.score_all(msvc_superset)
        for offset in msvc_superset.valid_offsets[:50]:
            individual = scorer.score_offset(msvc_superset, offset)
            assert np.isclose(scores[offset], individual), offset

    def test_separation_on_real_binary(self, models, msvc_case,
                                       msvc_superset):
        """True instruction starts outscore data offsets on average."""
        scorer = StatisticalScorer(models.code, models.data)
        scores = scorer.score_all(msvc_superset)
        truth = msvc_case.truth
        start_scores = [scores[o] for o in truth.instruction_starts]
        data_offsets = [o for s, e in truth.data_regions()
                        for o in range(s, e)]
        data_scores = [scores[o] for o in data_offsets]
        assert np.mean(start_scores) > np.mean(data_scores) + 1.0

    def test_window_controls_chain_length(self, models):
        short = StatisticalScorer(models.code, models.data, window=1)
        superset = Superset.build(b"\x90" * 8 + b"\xc3")
        value = short.score_offset(superset, 0)
        assert np.isfinite(value)

class TestAsciiRunCaching:
    def test_ascii_scan_runs_once_per_section(self, models):
        """score_offset must not rescan the section for ASCII runs on
        every call (that made per-offset scoring O(n^2))."""
        from repro.stats.scoring import terminated_ascii_runs

        scorer = StatisticalScorer(models.code, models.data)
        text = b"\x90" * 64 + b"a string literal!\x00" + b"\xc3"
        superset = Superset.build(text)
        terminated_ascii_runs.cache_clear()
        for offset in range(32):
            scorer.score_offset(superset, offset)
        info = terminated_ascii_runs.cache_info()
        assert info.misses == 1
        assert info.hits >= 31

    def test_penalty_still_applied_inside_terminated_run(self, models):
        scorer = StatisticalScorer(models.code, models.data)
        text = b"PLAIN ASCII TEXT HERE\x00" + b"\x90" * 8 + b"\xc3"
        superset = Superset.build(text)
        inside = scorer.score_offset(superset, 2)
        scores = scorer.score_all(superset)
        assert np.isclose(scores[2], inside)
