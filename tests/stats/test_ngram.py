"""Tests for the instruction n-gram language model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import decode
from repro.stats.ngram import NgramModel, START, token_of


class TestTokenization:
    def test_register_operands(self):
        ins = decode(b"\x48\x89\xe5", 0)        # mov rbp, rsp
        assert token_of(ins) == "mov:r64r64"

    def test_immediate_operands(self):
        ins = decode(b"\x48\x83\xec\x20", 0)    # sub rsp, 0x20
        assert token_of(ins) == "sub:r64i"

    def test_memory_operand(self):
        ins = decode(b"\x48\x8b\x45\xf8", 0)    # mov rax, [rbp-8]
        assert token_of(ins) == "mov:r64m"

    def test_rip_relative_is_distinct(self):
        ins = decode(b"\x48\x8d\x05\x00\x00\x00\x00", 0)
        assert token_of(ins) == "lea:r64M"

    def test_branch_operand(self):
        ins = decode(b"\xe8\x00\x00\x00\x00", 0)
        assert token_of(ins) == "call:rel"

    def test_immediates_are_normalized_away(self):
        a = decode(b"\x48\x83\xec\x20", 0)
        b = decode(b"\x48\x83\xec\x40", 0)
        assert token_of(a) == token_of(b)


class TestModel:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            NgramModel(weights=(0.5, 0.5, 0.5, 0.5))

    def test_trained_sequence_beats_unseen(self):
        model = NgramModel()
        model.train([["push:r64", "mov:r64r64", "sub:r64i"]] * 50)
        familiar = model.score_sequence(["push:r64", "mov:r64r64",
                                         "sub:r64i"])
        strange = model.score_sequence(["hlt:", "in:i", "out:i"])
        assert familiar > strange

    def test_context_matters(self):
        model = NgramModel()
        model.train([["a", "b", "c"]] * 50 + [["c", "b", "a"]] * 5)
        in_context = model.log_prob("c", ("a", "b"))
        out_of_context = model.log_prob("c", ("c", "c"))
        assert in_context > out_of_context

    def test_unseen_token_has_finite_probability(self):
        model = NgramModel()
        model.train([["a", "b"]])
        assert math.isfinite(model.log_prob("zzz", (START, START)))

    def test_empty_model_scores_uniform(self):
        model = NgramModel()
        assert math.isfinite(model.log_prob("anything", (START, START)))

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1,
                    max_size=12))
    def test_log_probs_are_valid(self, tokens):
        model = NgramModel()
        model.train([["a", "b", "c"], ["b", "c", "d"]] * 3)
        score = model.score_sequence(tokens)
        assert score <= 0.0
        assert math.isfinite(score)


class TestSerialization:
    def test_round_trip_preserves_scores(self):
        model = NgramModel()
        model.train([["push:r64", "mov:r64r64", "sub:r64i", "call:rel"]] * 7)
        restored = NgramModel.from_json(model.to_json())
        sequence = ["push:r64", "mov:r64r64", "call:rel"]
        assert restored.score_sequence(sequence) == pytest.approx(
            model.score_sequence(sequence))

    def test_round_trip_vocabulary(self):
        model = NgramModel()
        model.train([["x", "y"]])
        restored = NgramModel.from_json(model.to_json())
        assert restored.vocabulary_size == model.vocabulary_size
        assert restored.total == model.total


class TestOnRealCode:
    def test_real_code_scores_above_data(self, models, msvc_case,
                                         msvc_superset):
        """Chains at true starts outscore chains inside data regions."""
        code_model = models.code
        truth = msvc_case.truth
        starts = sorted(truth.instruction_starts)[:200]
        code_scores = []
        for start in starts:
            chain = msvc_superset.fallthrough_chain(start, 6)
            code_scores.append(code_model.score_instructions(chain)
                               / max(len(chain), 1))
        data_scores = []
        for region_start, region_end in truth.data_regions():
            for offset in range(region_start, min(region_end,
                                                  region_start + 8)):
                chain = msvc_superset.fallthrough_chain(offset, 6)
                if chain:
                    data_scores.append(
                        code_model.score_instructions(chain)
                        / len(chain))
        assert data_scores, "test binary has no data regions"
        def mean(xs):
            return sum(xs) / len(xs)
        assert mean(code_scores) > mean(data_scores) + 1.0


class TestMemoization:
    def test_log_prob_is_cached(self):
        model = NgramModel()
        model.train([["a", "b", "c"]])
        first = model.log_prob("b", (START, "a"))
        assert model._log_prob_cache[("b", (START, "a"))] == first
        assert model.log_prob("b", (START, "a")) == first

    def test_training_invalidates_cache(self):
        model = NgramModel()
        model.train([["a", "b"]])
        before = model.log_prob("b", (START, "a"))
        model.train([["a", "c"], ["a", "c"]])
        assert not model._log_prob_cache
        after = model.log_prob("b", (START, "a"))
        assert after < before    # "b" after "a" is now relatively rarer
