"""Smoke tests for the experiment runners (tiny corpora)."""

import pytest

from repro.eval.dataset import evaluation_corpus
from repro.eval.experiments import (EXPERIMENTS, main, run_f1, run_f3,
                                    run_f4, run_r1, run_t1, run_t2,
                                    run_t3, run_t4, run_t5)


@pytest.fixture(scope="module")
def tiny_corpus():
    return evaluation_corpus(seeds=(4,), function_count=8)


class TestTableRunners:
    def test_t1(self, tiny_corpus):
        table = run_t1(tiny_corpus)
        assert len(table.rows) == 3
        assert all(row["text_bytes"] > 0 for row in table.rows)

    def test_t2_ranks_our_tool_first(self, tiny_corpus):
        table = run_t2(tiny_corpus)
        by_tool = {row["tool"]: row["f1"] for row in table.rows}
        ours = by_tool.pop("repro (this paper)")
        assert ours >= max(by_tool.values())

    def test_t3_improvement_factor_noted(self, tiny_corpus):
        table = run_t3(tiny_corpus)
        assert any("improvement" in note for note in table.notes)
        by_tool = {row["tool"]: row["total_errors"] for row in table.rows}
        ours = by_tool.pop("repro (this paper)")
        assert ours <= min(by_tool.values())

    def test_t4_lists_all_variants(self, tiny_corpus):
        table = run_t4(tiny_corpus)
        variants = {row["variant"] for row in table.rows}
        assert "full" in variants and len(variants) >= 4

    def test_t5_function_metrics(self, tiny_corpus):
        table = run_t5(tiny_corpus)
        ours = next(row for row in table.rows
                    if row["tool"] == "repro (this paper)")
        assert ours["f1"] > 0.7


class TestFigureRunners:
    def test_f1_density_sweep(self):
        table = run_f1(densities=(0.0, 0.4), seeds=(4,), function_count=8)
        assert len(table.rows) == 2
        assert table.rows[0]["data_pct"] < table.rows[1]["data_pct"]

    def test_f3_scaling(self):
        table = run_f3(function_counts=(5, 10), seed=4)
        assert table.rows[0]["text_bytes"] < table.rows[1]["text_bytes"]
        assert all(row["repro"] > 0 for row in table.rows)

    def test_f4_threshold(self):
        table = run_f4(thresholds=(0.0,), seeds=(4,), function_count=8)
        assert len(table.rows) == 1


class TestCli:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {"t1", "t2", "t3", "t4", "t5",
                                    "f1", "f2", "f3", "f4", "v1", "l1", "r1"}

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "usage" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["zzz"]) == 1


class TestRoundTripRunner:
    def test_r1_all_identical(self, tiny_corpus):
        table = run_r1(tiny_corpus)
        assert len(table.rows) == len(tiny_corpus)
        assert all(row["identical"] for row in table.rows)
        assert all(row["elf_bytes"] > 0 and row["container_bytes"] > 0
                   for row in table.rows)
