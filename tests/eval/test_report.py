"""Tests for table rendering."""

from repro.eval.report import Table


class TestTable:
    def test_render_contains_everything(self):
        table = Table(title="Demo", columns=["tool", "f1"])
        table.add(tool="ours", f1=0.99)
        table.add(tool="baseline", f1=0.5)
        table.notes.append("a note")
        rendered = table.render()
        assert "Demo" in rendered
        assert "ours" in rendered
        assert "0.9900" in rendered
        assert "note: a note" in rendered

    def test_column_extraction(self):
        table = Table(title="t", columns=["a", "b"])
        table.add(a=1, b=2)
        table.add(a=3, b=4)
        assert table.column("a") == [1, 3]

    def test_empty_table_renders(self):
        table = Table(title="empty", columns=["x"])
        assert "empty" in table.render()

    def test_missing_cell_is_blank(self):
        table = Table(title="t", columns=["a", "b"])
        table.add(a=1)
        assert table.render()

    def test_large_floats_get_one_decimal(self):
        table = Table(title="t", columns=["n"])
        table.add(n=12345.678)
        assert "12345.7" in table.render()
