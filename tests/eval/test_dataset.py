"""Tests for the evaluation dataset."""

from repro.eval.dataset import (characteristics,
                                evaluation_corpus)


class TestCorpus:
    def test_default_corpus_is_cached(self):
        assert evaluation_corpus() is evaluation_corpus()

    def test_small_corpus_shape(self):
        cases = evaluation_corpus(seeds=(9,), function_count=5)
        assert len(cases) == 3
        names = sorted(c.name for c in cases)
        assert names == ["clang-like-s9", "gcc-like-s9", "msvc-like-s9"]


class TestCharacteristics:
    def test_counts_are_consistent(self, msvc_case):
        stats = characteristics(msvc_case)
        assert stats.text_bytes == (stats.code_bytes + stats.data_bytes
                                    + stats.padding_bytes)
        assert stats.functions == len(msvc_case.truth.functions)
        assert stats.instructions == len(
            msvc_case.truth.instruction_starts)

    def test_embedded_data_percent(self, msvc_case, gcc_case):
        assert characteristics(msvc_case).embedded_data_percent > 3.0
        assert characteristics(gcc_case).embedded_data_percent == 0.0
