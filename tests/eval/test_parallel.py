"""Tests for the parallel evaluation driver.

The driver's contract is determinism: any ``jobs`` value must produce
results identical to the serial path, down to every metric and table
row.
"""

import pytest

from repro.eval.dataset import evaluation_corpus
from repro.eval.experiments import run_t2, run_t5
from repro.eval.parallel import (ToolSpec, baseline_spec, effective_jobs,
                                 evaluate_pairs, evaluate_tool,
                                 evaluate_tools, predict_pairs, repro_spec)


@pytest.fixture(scope="module")
def tiny_corpus():
    return evaluation_corpus(seeds=(4,), function_count=8)


class TestToolSpec:
    def test_baseline_spec_is_validated(self):
        with pytest.raises(ValueError):
            ToolSpec(kind="baseline", name="no-such-tool")

    def test_kind_is_validated(self):
        with pytest.raises(ValueError):
            ToolSpec(kind="objdump", name="linear-sweep")

    def test_specs_are_hashable(self):
        assert len({baseline_spec("linear-sweep"),
                    baseline_spec("linear-sweep"), repro_spec()}) == 2


class TestEffectiveJobs:
    def test_none_means_serial(self):
        assert effective_jobs(None) == 1

    def test_zero_means_cpu_count(self):
        assert effective_jobs(0) >= 1

    def test_explicit_count_passes_through(self):
        assert effective_jobs(3) == 3


class TestDeterminism:
    def test_parallel_equals_serial_per_pair(self, tiny_corpus):
        pairs = [(spec, case)
                 for spec in (baseline_spec("linear-sweep"), repro_spec())
                 for case in tiny_corpus]
        serial = evaluate_pairs(pairs, jobs=None)
        parallel = evaluate_pairs(pairs, jobs=2)
        assert serial == parallel

    def test_parallel_equals_serial_pooled(self, tiny_corpus):
        spec = baseline_spec("rd-heuristic")
        assert (evaluate_tool(spec, tiny_corpus, jobs=2)
                == evaluate_tool(spec, tiny_corpus, jobs=None))

    def test_predictions_keep_submission_order(self, tiny_corpus):
        pairs = [(baseline_spec("linear-sweep"), case)
                 for case in tiny_corpus]
        serial = predict_pairs(pairs, jobs=None)
        parallel = predict_pairs(pairs, jobs=2)
        assert [r.instruction_starts for r in serial] \
            == [r.instruction_starts for r in parallel]

    def test_evaluate_tools_keeps_spec_order(self, tiny_corpus):
        specs = [baseline_spec("probabilistic"),
                 baseline_spec("linear-sweep")]
        results = evaluate_tools(specs, tiny_corpus, jobs=2)
        assert list(results) == ["probabilistic", "linear-sweep"]


class TestExperimentParity:
    """`--jobs N` tables must be byte-identical to serial tables."""

    def test_t2_table_identical(self, tiny_corpus):
        assert (run_t2(tiny_corpus, jobs=2).render()
                == run_t2(tiny_corpus).render())

    def test_t5_table_identical(self, tiny_corpus):
        assert (run_t5(tiny_corpus, jobs=2).render()
                == run_t5(tiny_corpus).render())
