"""Tests for the accuracy metrics."""

import pytest

from repro.binary.groundtruth import GroundTruth
from repro.eval.metrics import (ByteErrors, PrecisionRecall, aggregate,
                                evaluate)
from repro.result import DisassemblyResult


def truth_fixture() -> GroundTruth:
    gt = GroundTruth(size=16)
    gt.mark_instruction(0, 2)
    gt.mark_instruction(2, 2)
    gt.mark_data(4, 8)
    gt.mark_padding(8, 12)
    gt.mark_instruction(12, 4)
    gt.add_function("f", 0, 4)
    gt.add_function("g", 12, 16)
    return gt


class TestPrecisionRecall:
    def test_basic(self):
        pr = PrecisionRecall(8, 2, 2)
        assert pr.precision == 0.8
        assert pr.recall == 0.8
        assert pr.f1 == pytest.approx(0.8)

    def test_degenerate(self):
        empty = PrecisionRecall(0, 0, 0)
        assert empty.precision == 1.0
        assert empty.recall == 1.0
        zero = PrecisionRecall(0, 5, 5)
        assert zero.f1 == 0.0


class TestByteErrors:
    def test_totals(self):
        be = ByteErrors(false_code=3, missed_code=2, code_bytes=90,
                        data_bytes=10)
        assert be.total_errors == 5
        assert be.error_rate == 0.05


class TestEvaluate:
    def test_perfect_result(self):
        truth = truth_fixture()
        result = DisassemblyResult(
            tool="x",
            instructions={0: 2, 2: 2, 12: 4},
            data_regions=[(4, 8)],
            function_entries={0, 12},
        )
        evaluation = evaluate(result, truth)
        assert evaluation.instructions.f1 == 1.0
        assert evaluation.bytes.total_errors == 0
        assert evaluation.functions.f1 == 1.0

    def test_false_code_counted(self):
        truth = truth_fixture()
        result = DisassemblyResult(tool="x",
                                   instructions={0: 2, 2: 2, 4: 4, 12: 4})
        evaluation = evaluate(result, truth)
        assert evaluation.bytes.false_code == 4
        assert evaluation.instructions.false_positives == 1

    def test_missed_code_counted(self):
        truth = truth_fixture()
        result = DisassemblyResult(tool="x", instructions={0: 2, 2: 2})
        evaluation = evaluate(result, truth)
        assert evaluation.bytes.missed_code == 4
        assert evaluation.instructions.false_negatives == 1

    def test_padding_is_never_scored(self):
        truth = truth_fixture()
        # Claim the padding as code: no penalty.
        result = DisassemblyResult(tool="x",
                                   instructions={0: 2, 2: 2, 8: 4, 12: 4})
        evaluation = evaluate(result, truth)
        assert evaluation.bytes.false_code == 0
        assert evaluation.instructions.false_positives == 0

    def test_interior_prediction_is_false_positive(self):
        truth = truth_fixture()
        result = DisassemblyResult(tool="x",
                                   instructions={0: 2, 2: 2, 12: 4, 13: 2})
        evaluation = evaluate(result, truth)
        assert evaluation.instructions.false_positives == 1


class TestAggregate:
    def test_micro_average_pools_counts(self):
        truth = truth_fixture()
        good = evaluate(DisassemblyResult(
            tool="x", instructions={0: 2, 2: 2, 12: 4},
            function_entries={0, 12}), truth)
        bad = evaluate(DisassemblyResult(tool="x", instructions={}),
                       truth)
        pooled = aggregate([good, bad], "x")
        assert pooled.instructions.true_positives == 3
        assert pooled.instructions.false_negatives == 3
        assert pooled.bytes.missed_code == 8
        assert pooled.tool == "x"
