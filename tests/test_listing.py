"""Tests for the listing renderer and data-region classifier."""

from repro.listing import classify_data_regions, render_listing


class TestRenderListing:
    def test_contains_function_headers(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        listing = render_listing(msvc_case.text, result)
        assert "<func_0000>:" in listing
        assert listing.count("<func_") == len(result.function_entries)

    def test_instruction_lines_have_hex_and_mnemonic(self, disassembler,
                                                     msvc_case):
        result = disassembler.disassemble(msvc_case)
        listing = render_listing(msvc_case.text, result, end=64)
        first = [line for line in listing.splitlines() if "0x000000:" in line]
        assert first and "push" in first[0]

    def test_data_regions_collapsed(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        listing = render_listing(msvc_case.text, result)
        assert "<data " in listing

    def test_range_limits(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        partial = render_listing(msvc_case.text, result, start=0, end=32)
        assert len(partial.splitlines()) < 20


class TestClassifyDataRegions:
    def test_kinds_cover_all_regions(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        classified = classify_data_regions(msvc_case.text, result)
        assert len(classified) == len(result.data_regions)
        kinds = {kind for _, _, kind in classified}
        assert kinds <= {"jump-table", "string", "padding", "literal-pool"}

    def test_finds_jump_tables(self, disassembler, msvc_case):
        result = disassembler.disassemble(msvc_case)
        classified = classify_data_regions(msvc_case.text, result)
        table_regions = [(s, e) for s, e, k in classified
                         if k == "jump-table"]
        assert table_regions
        # Most classified table regions overlap true tables.
        true_table_bytes = {o for s, e in msvc_case.truth.jump_tables
                            for o in range(s, e)}
        hits = sum(1 for s, e in table_regions
                   if any(o in true_table_bytes for o in range(s, e)))
        assert hits / len(table_regions) > 0.7
