"""End-to-end integration tests: the paper's headline claims in miniature.

These tests reproduce the qualitative shape of the evaluation on small
binaries: our disassembler must beat every baseline on total byte
errors, keep near-perfect recall where recursive descent collapses, and
keep near-perfect precision where linear sweep collapses.
"""

import pytest

from repro.baselines import (heuristic_descent, linear_sweep,
                             probabilistic_disassembly, recursive_descent)
from repro.eval.metrics import aggregate, evaluate


@pytest.fixture(scope="module")
def scored(all_cases, disassembler):
    """Evaluations of every tool over the three-style test corpus."""
    tools = {
        "repro": lambda case: disassembler.disassemble(case),
        "linear": lambda case: linear_sweep(case.text),
        "rd": lambda case: recursive_descent(case.text, 0),
        "rd-heur": lambda case: heuristic_descent(case.text, 0),
        "prob": lambda case: probabilistic_disassembly(case.text, 0),
    }
    return {
        name: aggregate([evaluate(run(case), case.truth)
                         for case in all_cases], name)
        for name, run in tools.items()
    }


class TestHeadlineClaims:
    def test_ours_has_fewest_total_errors(self, scored):
        ours = scored["repro"].bytes.total_errors
        for name, evaluation in scored.items():
            if name != "repro":
                assert ours < evaluation.bytes.total_errors, name

    def test_error_reduction_factor_at_least_three(self, scored):
        """The paper's 3x-4x headline, as a lower bound."""
        ours = max(scored["repro"].bytes.total_errors, 1)
        best_baseline = min(e.bytes.total_errors
                            for name, e in scored.items()
                            if name != "repro")
        assert best_baseline / ours >= 3.0

    def test_ours_has_best_f1(self, scored):
        ours = scored["repro"].instructions.f1
        for name, evaluation in scored.items():
            if name != "repro":
                assert ours > evaluation.instructions.f1, name

    def test_recall_where_rd_collapses(self, scored):
        assert scored["repro"].instructions.recall > 0.99
        assert scored["rd"].instructions.recall < 0.7

    def test_precision_where_linear_collapses(self, scored):
        assert scored["repro"].instructions.precision > 0.98
        assert (scored["repro"].instructions.precision
                > scored["linear"].instructions.precision)

    def test_function_identification_beats_heuristic_rd(self, scored):
        assert (scored["repro"].functions.f1
                >= scored["rd-heur"].functions.f1)


class TestCrossStyleBehavior:
    def test_perfect_byte_recall_per_style(self, all_cases, disassembler):
        for case in all_cases:
            evaluation = evaluate(disassembler.disassemble(case),
                                  case.truth)
            assert evaluation.bytes.missed_code <= 10, case.name

    def test_stable_across_reruns(self, msvc_case, disassembler):
        first = disassembler.disassemble(msvc_case)
        second = disassembler.disassemble(msvc_case)
        assert first.instructions == second.instructions
        assert first.data_regions == second.data_regions
