"""Unit tests for ground-truth label bookkeeping."""

from hypothesis import given
from hypothesis import strategies as st

from repro.binary.groundtruth import ByteKind, FunctionInfo, GroundTruth


def make_truth() -> GroundTruth:
    gt = GroundTruth(size=32)
    gt.mark_instruction(0, 3)
    gt.mark_instruction(3, 1)
    gt.mark_data(8, 16)
    gt.add_function("f", 0, 8)
    gt.add_jump_table(16, 24)
    return gt


class TestLabels:
    def test_default_is_padding(self):
        gt = GroundTruth(size=4)
        assert all(gt.kind_at(i) == ByteKind.PADDING for i in range(4))

    def test_mark_instruction(self):
        gt = make_truth()
        assert gt.kind_at(0) == ByteKind.INSN_START
        assert gt.kind_at(1) == ByteKind.INSN_INTERIOR
        assert gt.kind_at(2) == ByteKind.INSN_INTERIOR
        assert gt.kind_at(3) == ByteKind.INSN_START

    def test_instruction_starts(self):
        assert make_truth().instruction_starts == {0, 3}

    def test_is_code(self):
        gt = make_truth()
        assert gt.is_code(0) and gt.is_code(1)
        assert not gt.is_code(10)

    def test_byte_counts(self):
        gt = make_truth()
        assert gt.code_bytes == 4
        assert gt.data_bytes == 16
        assert gt.padding_bytes == 32 - 4 - 16

    def test_data_regions(self):
        assert make_truth().data_regions() == [(8, 24)]

    def test_padding_regions(self):
        assert make_truth().padding_regions() == [(4, 8), (24, 32)]

    def test_data_region_at_end(self):
        gt = GroundTruth(size=8)
        gt.mark_data(4, 8)
        assert gt.data_regions() == [(4, 8)]

    def test_jump_table_marks_data(self):
        gt = make_truth()
        assert gt.kind_at(20) == ByteKind.DATA
        assert gt.jump_tables == [(16, 24)]


class TestFunctions:
    def test_function_entries(self):
        assert make_truth().function_entries == {0}

    def test_function_contains(self):
        f = FunctionInfo("f", 4, 10)
        assert 4 in f and 9 in f
        assert 10 not in f and 3 not in f


class TestSerialization:
    def test_round_trip(self):
        gt = make_truth()
        restored = GroundTruth.from_json(gt.to_json())
        assert restored.size == gt.size
        assert bytes(restored.labels) == bytes(gt.labels)
        assert restored.functions == gt.functions
        assert restored.jump_tables == gt.jump_tables

    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(1, 8)),
                    max_size=10))
    def test_round_trip_random_instructions(self, marks):
        gt = GroundTruth(size=80)
        for offset, length in marks:
            gt.mark_instruction(offset, min(length, 80 - offset))
        restored = GroundTruth.from_json(gt.to_json())
        assert restored.instruction_starts == gt.instruction_starts
