"""Unit tests for the binary container format."""

import pytest

from repro.binary.container import Binary, BinaryFormatError, Section


def sample_binary() -> Binary:
    return Binary(
        sections=[
            Section(".text", 0, b"\x55\x48\x89\xe5\xc3", executable=True),
            Section(".rodata", 0x200000, b"hello\x00"),
        ],
        entry=0,
    )


class TestSection:
    def test_size_and_end(self):
        s = Section(".text", 0x100, b"abcd", executable=True)
        assert s.size == 4
        assert s.end == 0x104

    def test_contains(self):
        s = Section(".text", 0x100, b"abcd")
        assert s.contains(0x100)
        assert s.contains(0x103)
        assert not s.contains(0x104)
        assert not s.contains(0xFF)


class TestBinary:
    def test_text_property(self):
        binary = sample_binary()
        assert binary.text.name == ".text"
        assert binary.text.executable

    def test_text_requires_exactly_one_executable(self):
        with pytest.raises(BinaryFormatError):
            Binary(sections=[Section(".rodata", 0, b"x")]).text
        two = Binary(sections=[Section("a", 0, b"x", executable=True),
                               Section("b", 16, b"y", executable=True)])
        with pytest.raises(BinaryFormatError):
            two.text

    def test_section_by_name(self):
        binary = sample_binary()
        assert binary.section(".rodata").data == b"hello\x00"
        with pytest.raises(KeyError):
            binary.section(".data")

    def test_section_at(self):
        binary = sample_binary()
        assert binary.section_at(0x200003).name == ".rodata"
        assert binary.section_at(0x100) is None


class TestSerialization:
    def test_round_trip(self):
        binary = sample_binary()
        restored = Binary.from_bytes(binary.to_bytes())
        assert restored.entry == binary.entry
        assert len(restored.sections) == 2
        for original, loaded in zip(binary.sections, restored.sections):
            assert loaded.name == original.name
            assert loaded.addr == original.addr
            assert loaded.data == original.data
            assert loaded.executable == original.executable

    def test_bad_magic(self):
        with pytest.raises(BinaryFormatError, match="magic"):
            Binary.from_bytes(b"XXXX" + b"\x00" * 32)

    def test_truncated_section(self):
        blob = sample_binary().to_bytes()
        with pytest.raises(BinaryFormatError):
            Binary.from_bytes(blob[:-3])

    def test_trailing_garbage(self):
        blob = sample_binary().to_bytes() + b"\x00"
        with pytest.raises(BinaryFormatError, match="trailing"):
            Binary.from_bytes(blob)

    def test_empty_binary_round_trips(self):
        binary = Binary(sections=[], entry=42)
        restored = Binary.from_bytes(binary.to_bytes())
        assert restored.entry == 42
        assert restored.sections == []

    def test_unicode_section_names(self):
        binary = Binary(sections=[Section("初期", 0, b"x")])
        restored = Binary.from_bytes(binary.to_bytes())
        assert restored.sections[0].name == "初期"


# ----------------------------------------------------------------------
# Property-based round trip (Hypothesis)
# ----------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_NAMES = st.text(
    alphabet=st.characters(codec="utf-8",
                           blacklist_categories=("Cs",)),
    min_size=0, max_size=12)

_SECTIONS = st.builds(
    Section,
    name=_NAMES,
    addr=st.integers(min_value=0, max_value=2**64 - 1),
    data=st.binary(min_size=0, max_size=256),
    executable=st.booleans())

_BINARIES = st.builds(
    Binary,
    sections=st.lists(_SECTIONS, min_size=0, max_size=8),
    entry=st.integers(min_value=0, max_value=2**64 - 1))


class TestRoundTripProperties:
    @given(binary=_BINARIES)
    @settings(max_examples=150, deadline=None)
    def test_serialize_deserialize_identity(self, binary):
        restored = Binary.from_bytes(binary.to_bytes())
        assert restored.sections == binary.sections
        assert restored.entry == binary.entry

    @given(binary=_BINARIES)
    @settings(max_examples=50, deadline=None)
    def test_serialization_is_canonical(self, binary):
        blob = binary.to_bytes()
        assert Binary.from_bytes(blob).to_bytes() == blob

    @given(binary=_BINARIES, cut=st.integers(min_value=0, max_value=64),
           flip=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=100, deadline=None)
    def test_mangled_blob_never_escapes_format_error(self, binary, cut,
                                                     flip):
        """Truncation or a header byte-flip either still parses or
        raises BinaryFormatError -- never IndexError/struct.error."""
        blob = bytearray(binary.to_bytes())
        if cut and cut < len(blob):
            del blob[-cut:]
        if blob:
            blob[flip % len(blob)] ^= 0xFF
        try:
            Binary.from_bytes(bytes(blob))
        except BinaryFormatError:
            pass
