"""Tests for the flat memory image used by table resolution."""

from repro.binary.container import Section
from repro.binary.image import MemoryImage


def image() -> MemoryImage:
    return MemoryImage(sections=[
        Section(".text", 0, bytes(range(16)), executable=True),
        Section(".rodata", 0x1000,
                (0x0123456789ABCDEF).to_bytes(8, "little") + b"\xff" * 8),
    ])


class TestReads:
    def test_read_within_section(self):
        assert image().read(2, 3) == bytes([2, 3, 4])

    def test_read_across_section_end_fails(self):
        assert image().read(14, 4) is None

    def test_read_unmapped(self):
        assert image().read(0x500, 1) is None

    def test_read_u64(self):
        assert image().read_u64(0x1000) == 0x0123456789ABCDEF
        assert image().read_u64(0x20) is None

    def test_read_i32_signed(self):
        assert image().read_i32(0x1008) == -1

    def test_in_text(self):
        img = image()
        assert img.in_text(5)
        assert not img.in_text(0x1004)
        assert not img.in_text(0x9999)


class TestConstruction:
    def test_from_text(self):
        img = MemoryImage.from_text(b"\x90\xc3")
        assert img.read(0, 2) == b"\x90\xc3"
        assert img.in_text(1)

    def test_from_binary(self, msvc_case):
        img = MemoryImage.from_binary(msvc_case.binary)
        assert img.read(0, 4) == msvc_case.text[:4]

    def test_rodata_readable_from_binary(self, gcc_case):
        img = MemoryImage.from_binary(gcc_case.binary)
        rodata = [s for s in gcc_case.binary.sections
                  if s.name == ".rodata"]
        if rodata:
            addr = rodata[0].addr
            assert img.read(addr, 4) == rodata[0].data[:4]
            assert not img.in_text(addr)
