"""Tests for paired binary + ground-truth I/O."""

from repro.binary import TestCase as ReproTestCase
from repro.synth import BinarySpec, generate_binary


class TestSaveLoad:
    def test_round_trip(self, tmp_path, msvc_case):
        msvc_case.save(tmp_path)
        loaded = ReproTestCase.load(tmp_path, msvc_case.name)
        assert loaded.text == msvc_case.text
        assert loaded.binary.entry == msvc_case.binary.entry
        assert (loaded.truth.instruction_starts
                == msvc_case.truth.instruction_starts)
        assert loaded.truth.jump_tables == msvc_case.truth.jump_tables

    def test_save_creates_two_files(self, tmp_path):
        case = generate_binary(BinarySpec(name="io-test",
                                          function_count=5, seed=3))
        bin_path, gt_path = case.save(tmp_path)
        assert bin_path.exists() and bin_path.suffix == ".bin"
        assert gt_path.exists() and gt_path.name.endswith(".gt.json")

    def test_binary_file_contains_no_ground_truth(self, tmp_path):
        """The stripped binary really is stripped."""
        case = generate_binary(BinarySpec(name="strip-test",
                                          function_count=5, seed=3))
        bin_path, _ = case.save(tmp_path)
        blob = bin_path.read_bytes()
        assert b"fn0000" not in blob          # no function names
        assert b"labels" not in blob          # no label payload
