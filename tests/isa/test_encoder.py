"""Encoder golden tests against well-known x86-64 encodings."""

import pytest

from repro.isa import Assembler, AssemblyError, mem, rip
from repro.isa.registers import (R12, R13, R15, RAX, RBP,
                                 RCX, RDI, RSP)


def emit(fn) -> bytes:
    a = Assembler()
    fn(a)
    return a.finish()


class TestGoldenEncodings:
    @pytest.mark.parametrize("build,expected", [
        (lambda a: a.push_r(RBP), "55"),
        (lambda a: a.push_r(R15), "4157"),
        (lambda a: a.pop_r(RBP), "5d"),
        (lambda a: a.mov_rr(RBP, RSP), "4889e5"),
        (lambda a: a.mov_rr(RAX, RCX, width=32), "89c8"),
        (lambda a: a.alu_ri("sub", RSP, 0x20), "4883ec20"),
        (lambda a: a.alu_ri("add", RAX, 0x100), "4881c000010000"),
        (lambda a: a.mov_ri(RAX, 42, width=32), "b82a000000"),
        (lambda a: a.ret(), "c3"),
        (lambda a: a.leave(), "c9"),
        (lambda a: a.int3(), "cc"),
        (lambda a: a.ud2(), "0f0b"),
        (lambda a: a.cdq(), "99"),
        (lambda a: a.cqo(), "4899"),
        (lambda a: a.endbr64(), "f30f1efa"),
        (lambda a: a.test_rr(RAX, RAX), "4885c0"),
        (lambda a: a.alu_rr("xor", RAX, RAX, width=32), "31c0"),
        (lambda a: a.call_r(RAX), "ffd0"),
        (lambda a: a.jmp_r(RAX), "ffe0"),
        (lambda a: a.inc(RAX), "48ffc0"),
        (lambda a: a.dec(RCX, width=32), "ffc9"),
        (lambda a: a.shift_ri("shl", RAX, 3), "48c1e003"),
        (lambda a: a.shift_ri("shr", RAX, 1), "48d1e8"),
        (lambda a: a.movzx(RAX, RCX, 8, width=32), "0fb6c1"),
        (lambda a: a.movsx(RAX, RDI, 32), "4863c7"),
        (lambda a: a.push_i(1), "6a01"),
        (lambda a: a.push_i(0x12345678), "6878563412"),
        (lambda a: a.setcc("e", RAX), "0f94c0"),
        (lambda a: a.cmovcc("e", RAX, RCX), "480f44c1"),
        (lambda a: a.imul_rr(RAX, RCX), "480fafc1"),
        (lambda a: a.xchg_rr(RAX, RCX), "4887c8"),
    ])
    def test_encoding(self, build, expected):
        assert emit(build).hex() == expected

    def test_alu_ri_imm32_on_ecx_uses_group1(self):
        # add ecx, 0x100 -> 81 c1 00 01 00 00 (not the rAX short form)
        assert emit(lambda a: a.alu_ri("add", RCX, 0x100,
                                       width=32)).hex() == "81c100010000"

    def test_mov_r64_small_imm_uses_c7(self):
        assert emit(lambda a: a.mov_ri(RAX, 42)).hex() == "48c7c02a000000"

    def test_mov_r64_large_imm_uses_b8(self):
        raw = emit(lambda a: a.mov_ri(RAX, 0x1122334455667788))
        assert raw.hex().startswith("48b8")
        assert len(raw) == 10


class TestAddressing:
    def test_rbp_disp8(self):
        # mov rax, [rbp-8]
        raw = emit(lambda a: a.mov_rm(RAX, mem(base=RBP, disp=-8)))
        assert raw.hex() == "488b45f8"

    def test_rsp_base_needs_sib(self):
        raw = emit(lambda a: a.mov_rm(RAX, mem(base=RSP, disp=8)))
        assert raw.hex() == "488b442408"

    def test_r12_base_needs_sib(self):
        raw = emit(lambda a: a.mov_rm(RAX, mem(base=R12)))
        assert raw.hex() == "498b0424"

    def test_r13_base_needs_disp8(self):
        raw = emit(lambda a: a.mov_rm(RAX, mem(base=R13)))
        assert raw.hex() == "498b4500"

    def test_base_index_scale(self):
        # lea rax, [rdi + rcx*4 + 0x10]
        raw = emit(lambda a: a.lea(RAX, mem(base=RDI, index=RCX, scale=4,
                                            disp=0x10)))
        assert raw.hex() == "488d448f10"

    def test_index_without_base(self):
        # jmp [rcx*8 + 0x2000]
        raw = emit(lambda a: a.jmp_m(mem(index=RCX, scale=8, disp=0x2000)))
        assert raw.hex() == "ff24cd00200000"

    def test_absolute_disp32(self):
        raw = emit(lambda a: a.mov_rm(RAX, mem(disp=0x1234)))
        assert raw.hex() == "488b042534120000"

    def test_rip_relative_label(self):
        a = Assembler()
        a.bind("target")
        a.lea(RAX, rip("target"))
        raw = a.finish()
        # lea rax, [rip-7]: encoded disp is -7 back to offset 0.
        assert raw.hex() == "488d05f9ffffff"

    def test_rsp_cannot_be_index(self):
        with pytest.raises(AssemblyError):
            emit(lambda a: a.lea(RAX, mem(base=RAX, index=RSP)))

    def test_bad_scale_rejected(self):
        with pytest.raises(AssemblyError):
            emit(lambda a: a.lea(RAX, mem(base=RAX, index=RCX, scale=3)))


class TestLabels:
    def test_forward_branch(self):
        a = Assembler()
        a.jmp("out")
        a.nop(3)
        a.bind("out")
        a.ret()
        raw = a.finish()
        assert raw.hex() == "e903000000" + "0f1f00" + "c3"

    def test_backward_short_branch(self):
        a = Assembler()
        a.bind("top")
        a.dec(RCX, width=32)
        a.jcc("ne", "top", short=True)
        raw = a.finish()
        assert raw.hex() == "ffc9" + "75fc"

    def test_call_resolves_forward(self):
        a = Assembler()
        a.call("f")
        a.ret()
        a.bind("f")
        a.ret()
        raw = a.finish()
        assert raw.hex() == "e801000000c3c3"

    def test_short_branch_out_of_range(self):
        a = Assembler()
        a.jmp("far", short=True)
        a.db(b"\x90" * 200)
        a.bind("far")
        with pytest.raises(AssemblyError, match="out of range"):
            a.finish()

    def test_undefined_label(self):
        a = Assembler()
        a.jmp("nowhere")
        with pytest.raises(AssemblyError, match="undefined"):
            a.finish()

    def test_duplicate_label(self):
        a = Assembler()
        a.bind("x")
        with pytest.raises(AssemblyError, match="twice"):
            a.bind("x")

    def test_dq_label_emits_absolute_address(self):
        a = Assembler(base=0x100)
        a.nop(4)
        a.bind("here")
        a.dq_label("here")
        raw = a.finish()
        assert raw[4:12] == (0x104).to_bytes(8, "little")

    def test_dd_label_rel_requires_bound_anchor(self):
        a = Assembler()
        with pytest.raises(AssemblyError, match="anchor"):
            a.dd_label_rel("x", "unbound_anchor")

    def test_dd_label_rel_value(self):
        a = Assembler()
        a.bind("table")
        a.dd_label_rel("case", "table")
        a.nop(4)
        a.bind("case")
        raw = a.finish()
        delta = int.from_bytes(raw[0:4], "little", signed=True)
        assert delta == 8    # table at 0, case at 8

    def test_disp_label_absolute(self):
        from repro.isa.encoder import Mem
        a = Assembler()
        a.jmp_m(Mem(index=RCX, scale=8, disp_label="t"))
        a.bind("t")
        raw = a.finish()
        assert raw[3:7] == (7).to_bytes(4, "little")


class TestPadding:
    @pytest.mark.parametrize("count", range(1, 24))
    def test_nop_padding_lengths(self, count):
        raw = emit(lambda a: a.nop(count))
        assert len(raw) == count

    def test_nop_padding_decodes_as_nops(self):
        from repro.isa import decode
        raw = emit(lambda a: a.nop(17))
        offset = 0
        while offset < len(raw):
            ins = decode(raw, offset)
            assert ins.is_nop
            offset = ins.end

    def test_align(self):
        a = Assembler()
        a.db(b"\x90" * 3)
        a.align(8, b"\xcc")
        assert a.here == 8
        raw = a.finish()
        assert raw[3:] == b"\xcc" * 5

    def test_align_code(self):
        a = Assembler()
        a.ret()
        a.align_code(16)
        assert a.here == 16

    def test_byte_register_spl_needs_rex(self):
        raw = emit(lambda a: a.mov_rr(RSP, RAX, width=8))
        assert raw.hex() == "4088c4"    # mov spl, al
