"""Decoder golden tests: known x86-64 encodings decode correctly."""

import pytest

from repro.isa import decode, try_decode
from repro.isa.errors import (InvalidOpcodeError, TooLongError,
                              TruncatedError)
from repro.isa.opcodes import FlowKind
from repro.isa.operands import ImmOp, MemOp, RegOp
from repro.isa.registers import R15, RAX, RBP, RCX, RDI, RSP


def one(raw: bytes):
    ins = decode(raw, 0)
    assert ins.length == len(raw), f"length mismatch for {raw.hex()}"
    return ins


class TestSimpleInstructions:
    def test_push_rbp(self):
        ins = one(b"\x55")
        assert ins.mnemonic == "push"
        assert ins.operands[0] == RegOp(__import__("repro.isa.registers",
                                                   fromlist=["Register"]
                                                   ).Register(RBP, 64))

    def test_ret(self):
        ins = one(b"\xc3")
        assert ins.mnemonic == "ret"
        assert ins.flow is FlowKind.RET
        assert not ins.falls_through

    def test_ret_imm16(self):
        ins = one(b"\xc2\x08\x00")
        assert ins.mnemonic == "ret"
        assert ins.operands[0] == ImmOp(8, 16)

    def test_leave(self):
        assert one(b"\xc9").mnemonic == "leave"

    def test_nop(self):
        ins = one(b"\x90")
        assert ins.is_nop

    def test_nop_with_operand_size_prefix(self):
        assert one(b"\x66\x90").is_nop

    def test_long_nop(self):
        ins = one(b"\x0f\x1f\x44\x00\x00")
        assert ins.is_nop
        assert ins.length == 5

    def test_endbr64(self):
        ins = one(b"\xf3\x0f\x1e\xfa")
        assert ins.is_nop       # decodes as a hint nop

    def test_int3(self):
        ins = one(b"\xcc")
        assert ins.mnemonic == "int3"
        assert ins.flow is FlowKind.TRAP

    def test_ud2(self):
        ins = one(b"\x0f\x0b")
        assert ins.mnemonic == "ud2"
        assert ins.flow is FlowKind.HALT

    def test_hlt(self):
        ins = one(b"\xf4")
        assert ins.flow is FlowKind.HALT
        assert ins.rare

    def test_syscall(self):
        assert one(b"\x0f\x05").mnemonic == "syscall"

    def test_cdq_and_cqo(self):
        assert one(b"\x99").mnemonic == "cdq"
        assert one(b"\x48\x99").mnemonic == "cqo"
        assert one(b"\x66\x99").mnemonic == "cwd"
        assert one(b"\x98").mnemonic == "cwde"
        assert one(b"\x48\x98").mnemonic == "cdqe"


class TestMovAndArithmetic:
    def test_mov_rbp_rsp(self):
        ins = one(b"\x48\x89\xe5")
        assert ins.mnemonic == "mov"
        assert str(ins.operands[0]) == "rbp"
        assert str(ins.operands[1]) == "rsp"

    def test_mov_eax_imm32(self):
        ins = one(b"\xb8\x2a\x00\x00\x00")
        assert ins.mnemonic == "mov"
        assert ins.operands[1] == ImmOp(42, 32)

    def test_mov_rax_imm64(self):
        raw = b"\x48\xb8" + (0x1122334455667788).to_bytes(8, "little")
        ins = one(raw)
        assert ins.operands[1].value == 0x1122334455667788

    def test_mov_r64_imm32_sign_extended(self):
        ins = one(b"\x48\xc7\xc0\x2a\x00\x00\x00")
        assert ins.mnemonic == "mov"
        assert ins.operands[1].value == 42

    def test_mov_load_rbp_disp8(self):
        ins = one(b"\x48\x8b\x45\xf8")     # mov rax, [rbp-8]
        memop = ins.operands[1]
        assert isinstance(memop, MemOp)
        assert memop.base.family == RBP
        assert memop.disp == -8

    def test_sub_rsp_imm8(self):
        ins = one(b"\x48\x83\xec\x20")
        assert ins.mnemonic == "sub"
        assert ins.operands[0].register.family == RSP
        assert ins.operands[1].value == 0x20

    def test_add_imm32(self):
        ins = one(b"\x48\x81\xc0\x00\x01\x00\x00")   # add rax, 0x100
        assert ins.mnemonic == "add"
        assert ins.operands[1].value == 0x100

    def test_xor_self(self):
        ins = one(b"\x31\xc0")              # xor eax, eax
        assert ins.mnemonic == "xor"

    def test_test_rr(self):
        ins = one(b"\x48\x85\xc0")
        assert ins.mnemonic == "test"
        assert ins.writes_flags

    def test_imul_two_operand(self):
        ins = one(b"\x48\x0f\xaf\xc1")      # imul rax, rcx
        assert ins.mnemonic == "imul"

    def test_imul_with_imm8(self):
        ins = one(b"\x48\x6b\xc0\x05")      # imul rax, rax, 5
        assert ins.mnemonic == "imul"
        assert ins.operands[2].value == 5

    def test_shl_imm(self):
        ins = one(b"\x48\xc1\xe0\x03")      # shl rax, 3
        assert ins.mnemonic == "shl"
        assert ins.operands[1].value == 3

    def test_group3_div(self):
        ins = one(b"\x48\xf7\xf1")          # div rcx
        assert ins.mnemonic == "div"

    def test_group3_test_imm(self):
        ins = one(b"\xf7\xc0\x01\x00\x00\x00")   # test eax, 1
        assert ins.mnemonic == "test"
        assert ins.operands[1].value == 1

    def test_movzx_byte(self):
        ins = one(b"\x0f\xb6\xc0")          # movzx eax, al
        assert ins.mnemonic == "movzx"

    def test_movsxd(self):
        ins = one(b"\x48\x63\xc7")          # movsxd rax, edi
        assert ins.mnemonic == "movsxd"
        assert ins.operands[1].register.width == 32

    def test_lea_rip_relative(self):
        ins = one(b"\x48\x8d\x05\x10\x00\x00\x00")   # lea rax, [rip+0x10]
        memop = ins.operands[1]
        assert memop.rip_relative
        assert memop.target == 7 + 0x10
        assert ins.rip_target == 7 + 0x10

    def test_setcc(self):
        ins = one(b"\x0f\x94\xc0")          # sete al
        assert ins.display_mnemonic == "sete"
        assert ins.reads_flags

    def test_cmov(self):
        ins = one(b"\x48\x0f\x44\xc1")      # cmove rax, rcx
        assert ins.display_mnemonic == "cmove"
        assert ins.reads_flags


class TestControlFlow:
    def test_call_rel32(self):
        ins = one(b"\xe8\x00\x00\x00\x00")
        assert ins.flow is FlowKind.CALL
        assert ins.branch_target == 5
        assert ins.falls_through

    def test_jmp_rel32_backward(self):
        ins = one(b"\xe9\xfb\xff\xff\xff")
        assert ins.flow is FlowKind.JUMP
        assert ins.branch_target == 0
        assert not ins.falls_through

    def test_jmp_rel8(self):
        ins = one(b"\xeb\xfe")
        assert ins.branch_target == 0       # self-loop

    def test_jcc_rel8(self):
        ins = one(b"\x74\x05")
        assert ins.display_mnemonic == "je"
        assert ins.flow is FlowKind.CJUMP
        assert ins.branch_target == 7
        assert ins.falls_through

    def test_jcc_rel32(self):
        ins = one(b"\x0f\x84\x10\x00\x00\x00")
        assert ins.display_mnemonic == "je"
        assert ins.branch_target == 0x16

    def test_call_register(self):
        ins = one(b"\xff\xd0")              # call rax
        assert ins.flow is FlowKind.ICALL
        assert ins.branch_target is None

    def test_jmp_register(self):
        ins = one(b"\xff\xe0")              # jmp rax
        assert ins.flow is FlowKind.IJUMP

    def test_jmp_table_dispatch(self):
        ins = one(b"\xff\x24\xcd\x00\x20\x00\x00")  # jmp [rcx*8+0x2000]
        assert ins.flow is FlowKind.IJUMP
        memop = ins.operands[0]
        assert memop.index.family == RCX
        assert memop.scale == 8
        assert memop.disp == 0x2000
        assert memop.base is None

    def test_push_r15_uses_rex(self):
        ins = one(b"\x41\x57")
        assert ins.mnemonic == "push"
        assert ins.operands[0].register.family == R15


class TestDecodeErrors:
    @pytest.mark.parametrize("raw", [b"\x06", b"\x0e", b"\x16", b"\x27",
                                     b"\x62\x00", b"\xd6", b"\xea",
                                     b"\xc4\x00", b"\x0f\x04", b"\x0f\xff"])
    def test_invalid_opcodes(self, raw):
        with pytest.raises(InvalidOpcodeError):
            decode(raw + b"\x00" * 8, 0)

    def test_lock_prefix_on_nop_is_invalid(self):
        with pytest.raises(InvalidOpcodeError):
            decode(b"\xf0\x90", 0)

    def test_lock_prefix_on_memory_add_is_valid(self):
        ins = decode(b"\xf0\x48\x01\x08", 0)    # lock add [rax], rcx
        assert ins.mnemonic == "add"

    def test_lock_prefix_on_register_add_is_invalid(self):
        with pytest.raises(InvalidOpcodeError):
            decode(b"\xf0\x48\x01\xc8", 0)      # lock add rax, rcx

    def test_truncated_instruction(self):
        with pytest.raises(TruncatedError):
            decode(b"\x48", 0)

    def test_truncated_immediate(self):
        with pytest.raises(TruncatedError):
            decode(b"\xb8\x01\x02", 0)

    def test_offset_outside_buffer(self):
        with pytest.raises(TruncatedError):
            decode(b"\x90", 5)

    def test_prefix_run_too_long(self):
        with pytest.raises(TooLongError):
            decode(b"\x66" * 15 + b"\x90", 0)

    def test_undefined_group_extension(self):
        # FF /7 is undefined.
        with pytest.raises(InvalidOpcodeError):
            decode(b"\xff\xf8", 0)

    def test_try_decode_returns_none(self):
        assert try_decode(b"\x06", 0) is None
        assert try_decode(b"\x90", 0) is not None


class TestEffects:
    def test_push_touches_rsp(self):
        ins = one(b"\x55")
        assert RSP in ins.reads and RSP in ins.writes
        assert RBP in ins.reads

    def test_mov_writes_only_dest(self):
        ins = one(b"\x48\x89\xe5")      # mov rbp, rsp
        assert ins.writes == {RBP}
        assert RSP in ins.reads
        assert RBP not in ins.reads

    def test_add_reads_and_writes_dest(self):
        ins = one(b"\x48\x01\xc8")      # add rax, rcx
        assert ins.reads == {RAX, RCX}
        assert ins.writes == {RAX}

    def test_cmp_writes_nothing(self):
        ins = one(b"\x48\x39\xc8")      # cmp rax, rcx
        assert not ins.writes
        assert ins.writes_flags

    def test_lea_does_not_read_memory_but_reads_address_regs(self):
        ins = one(b"\x48\x8d\x04\x0f")  # lea rax, [rdi+rcx]
        assert ins.reads == {RDI, RCX}
        assert ins.writes == {RAX}

    def test_div_implicit_rax_rdx(self):
        from repro.isa.registers import RDX
        ins = one(b"\x48\xf7\xf1")      # div rcx
        assert {RAX, RDX} <= ins.reads
        assert {RAX, RDX} <= ins.writes

    def test_shift_by_cl_reads_rcx(self):
        ins = one(b"\x48\xd3\xe0")      # shl rax, cl
        assert RCX in ins.reads

    def test_long_nop_reads_nothing(self):
        ins = one(b"\x0f\x1f\x44\x00\x00")
        assert not ins.reads
        assert not ins.writes

    def test_call_rel32_stack_effects(self):
        ins = one(b"\xe8\x00\x00\x00\x00")
        assert RSP in ins.reads and RSP in ins.writes
