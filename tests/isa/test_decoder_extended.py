"""Extended decoder coverage: rarely-exercised corners of the ISA."""

import pytest

from repro.isa import decode, try_decode
from repro.isa.errors import InvalidOpcodeError
from repro.isa.opcodes import FlowKind
from repro.isa.operands import ImmOp
from repro.isa.registers import RAX, RCX, RDI, RDX, RSI, RSP


def one(raw: bytes):
    ins = decode(raw, 0)
    assert ins.length == len(raw), f"length mismatch for {raw.hex()}"
    return ins


class TestStringOperations:
    def test_movsb(self):
        ins = one(b"\xa4")
        assert ins.mnemonic == "movs"
        assert {RSI, RDI} <= ins.reads

    def test_rep_movsq(self):
        ins = one(b"\xf3\x48\xa5")
        assert ins.mnemonic == "movs"

    def test_stosd(self):
        ins = one(b"\xab")
        assert ins.mnemonic == "stos"
        assert RAX in ins.reads and RDI in ins.writes

    def test_lodsb_is_rare(self):
        assert one(b"\xac").rare

    def test_scas_and_cmps(self):
        assert one(b"\xae").mnemonic == "scas"
        assert one(b"\xa6").mnemonic == "cmps"


class TestBitOperations:
    def test_bt_register(self):
        ins = one(b"\x48\x0f\xa3\xc8")     # bt rax, rcx
        assert ins.mnemonic == "bt"
        assert not ins.writes              # compare-like

    def test_bts_writes(self):
        ins = one(b"\x48\x0f\xab\xc8")     # bts rax, rcx
        assert ins.mnemonic == "bts"
        assert RAX in ins.writes

    def test_bt_group8_immediate(self):
        ins = one(b"\x48\x0f\xba\xe0\x05")  # bt rax, 5
        assert ins.mnemonic == "bt"
        assert ins.operands[1] == ImmOp(5, 8)

    def test_group8_low_extensions_invalid(self):
        with pytest.raises(InvalidOpcodeError):
            decode(b"\x0f\xba\xc0\x05", 0)   # /0 undefined

    def test_bsf_bsr(self):
        assert one(b"\x48\x0f\xbc\xc1").mnemonic == "bsf"
        assert one(b"\x48\x0f\xbd\xc1").mnemonic == "bsr"

    def test_popcnt(self):
        ins = one(b"\xf3\x48\x0f\xb8\xc1")
        assert ins.mnemonic == "popcnt"

    def test_shld_with_imm(self):
        ins = one(b"\x48\x0f\xa4\xc8\x04")  # shld rax, rcx, 4
        assert ins.mnemonic == "shld"
        assert ins.operands[2] == ImmOp(4, 8)

    def test_bswap(self):
        ins = one(b"\x48\x0f\xc8")
        assert ins.mnemonic == "bswap"
        assert ins.writes == {RAX}


class TestAtomics:
    def test_cmpxchg(self):
        ins = one(b"\x48\x0f\xb1\x0f")     # cmpxchg [rdi], rcx
        assert ins.mnemonic == "cmpxchg"
        assert ins.rare

    def test_lock_cmpxchg(self):
        ins = one(b"\xf0\x48\x0f\xb1\x0f")
        assert ins.mnemonic == "cmpxchg"

    def test_xadd(self):
        assert one(b"\x48\x0f\xc1\x07").mnemonic == "xadd"

    def test_lock_bts_memory(self):
        ins = one(b"\xf0\x48\x0f\xab\x0f")  # lock bts [rdi], rcx
        assert ins.mnemonic == "bts"


class TestLegacyAndRare:
    def test_moffs_load(self):
        # mov rax, [0x1122334455667788] (a0 with REX.W)
        raw = b"\x48\xa1" + (0x1122334455667788).to_bytes(8, "little")
        ins = one(raw)
        assert ins.mnemonic == "mov_moffs"
        assert ins.rare

    def test_enter(self):
        ins = one(b"\xc8\x20\x00\x01")
        assert ins.mnemonic == "enter"
        assert RSP in ins.writes

    def test_xlat(self):
        ins = one(b"\xd7")
        assert ins.mnemonic == "xlat"

    def test_in_out(self):
        assert one(b"\xe4\x60").mnemonic == "in"       # in al, 0x60
        assert one(b"\xee").mnemonic == "out"          # out dx, al
        assert one(b"\xe4\x60").rare

    def test_loop_family(self):
        ins = one(b"\xe2\xfe")
        assert ins.mnemonic == "loop"
        assert ins.flow is FlowKind.CJUMP
        assert RCX in ins.reads
        assert one(b"\xe3\x00").mnemonic == "jrcxz"

    def test_int_imm(self):
        ins = one(b"\xcd\x80")
        assert ins.mnemonic == "int"
        assert ins.operands[0].value == -128     # sign-extended raw byte

    def test_iret_and_retf(self):
        assert one(b"\xcf").flow is FlowKind.RET
        assert one(b"\xcb").flow is FlowKind.RET
        assert one(b"\xca\x10\x00").flow is FlowKind.RET

    def test_flag_twiddlers(self):
        for raw, name in ((b"\xf8", "clc"), (b"\xf9", "stc"),
                          (b"\xfc", "cld"), (b"\xfd", "std"),
                          (b"\xf5", "cmc")):
            assert one(raw).mnemonic == name

    def test_cli_sti_are_rare(self):
        assert one(b"\xfa").rare
        assert one(b"\xfb").rare

    def test_sahf_lahf(self):
        assert one(b"\x9e").mnemonic == "sahf"
        assert one(b"\x9f").mnemonic == "lahf"

    def test_pushf_popf(self):
        assert one(b"\x9c").mnemonic == "pushf"
        assert one(b"\x9d").mnemonic == "popf"

    def test_segment_override_marks_rare(self):
        # cs-prefixed mov: legal but flagged as unusual for real code.
        ins = one(b"\x2e\x48\x89\xe5")
        assert ins.rare


class TestX87AndSimd:
    def test_x87_register_form(self):
        ins = one(b"\xd8\xc1")              # fadd st0, st1
        assert ins.mnemonic == "x87"
        assert not ins.reads and not ins.writes   # no GPR semantics

    def test_x87_memory_form_reads_address_registers(self):
        ins = one(b"\xd9\x45\xf8")          # fld dword [rbp-8]
        assert ins.mnemonic == "x87"
        from repro.isa.registers import RBP
        assert RBP in ins.reads

    def test_sse_mov_lengths(self):
        assert one(b"\x0f\x10\xc1").length == 3        # movups
        assert one(b"\x66\x0f\x6f\xc1").length == 4    # movdqa
        assert one(b"\xf3\x0f\x10\xc1").length == 4    # movss

    def test_sse_shuffle_takes_imm8(self):
        ins = one(b"\x66\x0f\x70\xc1\x1b")  # pshufd xmm0, xmm1, 0x1b
        assert ins.length == 5

    def test_sse_no_gpr_effects(self):
        ins = one(b"\x0f\x58\xc1")          # addps
        assert not ins.reads and not ins.writes

    def test_sse_memory_form_reads_base(self):
        ins = one(b"\x0f\x10\x07")          # movups xmm0, [rdi]
        assert RDI in ins.reads

    def test_emms(self):
        assert one(b"\x0f\x77").mnemonic == "emms"


class TestSystemInstructions:
    def test_cpuid(self):
        ins = one(b"\x0f\xa2")
        assert ins.mnemonic == "cpuid"
        assert RAX in ins.writes and RDX in ins.writes

    def test_rdtsc(self):
        ins = one(b"\x0f\x31")
        assert {RAX, RDX} <= ins.writes

    def test_rdmsr_wrmsr_rare(self):
        assert one(b"\x0f\x32").rare
        assert one(b"\x0f\x30").rare

    def test_group7_memory_form(self):
        ins = one(b"\x0f\x01\x10")          # lgdt [rax]
        assert ins.mnemonic == "lgdt"
        assert ins.rare

    def test_fence(self):
        ins = one(b"\x0f\xae\xe8")          # lfence
        assert ins.mnemonic == "fence"

    def test_cmpxchg8b(self):
        ins = one(b"\x0f\xc7\x0f")          # cmpxchg8b [rdi]
        assert ins.mnemonic == "cmpxchg8b"

    def test_rdrand(self):
        ins = one(b"\x0f\xc7\xf0")          # rdrand eax
        assert ins.mnemonic == "rdrand"


class TestInvalidCorners:
    @pytest.mark.parametrize("raw", [
        b"\x0f\x38\x00\xc0",    # three-byte escape unsupported
        b"\x0f\x3a\x0f\xc0",
        b"\x0f\x0e",            # femms (3DNow!)
        b"\x0f\xb9\xc0",        # ud1
        b"\x82\xc0\x01",        # invalid in 64-bit mode
        b"\x9a",                # far call
        b"\xce",                # into
        b"\xd4\x0a",            # aam
        b"\x60",                # pusha
    ])
    def test_invalid(self, raw):
        assert try_decode(raw + b"\x00" * 4, 0) is None

    def test_ff_slash7_invalid(self):
        with pytest.raises(InvalidOpcodeError):
            decode(b"\xff\xff", 0)

    def test_fe_high_extensions_invalid(self):
        with pytest.raises(InvalidOpcodeError):
            decode(b"\xfe\xd0", 0)   # /2 undefined for FE

    def test_c6_nonzero_extension_invalid(self):
        with pytest.raises(InvalidOpcodeError):
            decode(b"\xc6\xc8\x01", 0)   # C6 /1 undefined


class TestPrefixSemantics:
    def test_operand_size_prefix_shrinks_immediate(self):
        ins = one(b"\x66\xb8\x34\x12")       # mov ax, 0x1234
        assert ins.operands[0].register.width == 16
        assert ins.operands[1] == ImmOp(0x1234, 16)

    def test_rex_w_wins_over_66(self):
        ins = one(b"\x66\x48\x89\xe5")
        assert ins.operands[0].register.width == 64

    def test_rex_before_legacy_prefix_is_dropped(self):
        # REX must immediately precede the opcode; 48 66 89 e5 -> the
        # REX is void, giving the 16-bit form.
        ins = one(b"\x48\x66\x89\xe5")
        assert ins.operands[0].register.width == 16

    def test_double_rex_last_wins(self):
        ins = one(b"\x40\x48\x89\xe5")
        assert ins.operands[0].register.width == 64

    def test_push_with_66_is_16_bit(self):
        ins = one(b"\x66\x50")
        assert ins.operands[0].register.width == 16

    def test_push_defaults_to_64(self):
        ins = one(b"\x50")
        assert ins.operands[0].register.width == 64


class TestAddressingCorners:
    def test_rip_relative_with_immediate(self):
        # mov dword [rip+8], 0x2a : disp anchored past the immediate.
        ins = one(b"\xc7\x05\x08\x00\x00\x00\x2a\x00\x00\x00")
        memop = ins.operands[0]
        assert memop.rip_relative
        assert memop.target == 10 + 8

    def test_sib_no_base_no_index(self):
        ins = one(b"\x48\x8b\x04\x25\x00\x10\x00\x00")   # mov rax,[0x1000]
        memop = ins.operands[1]
        assert memop.base is None and memop.index is None
        assert memop.disp == 0x1000

    def test_r12_base_with_sib(self):
        ins = one(b"\x49\x8b\x04\x24")       # mov rax, [r12]
        memop = ins.operands[1]
        assert memop.base.family == 12

    def test_r13_base_forces_disp(self):
        ins = one(b"\x49\x8b\x45\x00")       # mov rax, [r13+0]
        memop = ins.operands[1]
        assert memop.base.family == 13

    def test_rex_x_extends_index(self):
        ins = one(b"\x4a\x8b\x04\x08")       # mov rax, [rax + r9]
        memop = ins.operands[1]
        assert memop.index.family == 9

    def test_index_encoding_4_means_none_without_rex_x(self):
        ins = one(b"\x48\x8b\x04\x24")       # mov rax, [rsp]
        memop = ins.operands[1]
        assert memop.index is None

    def test_scale_decoding(self):
        for scale, sib in ((1, 0x08), (2, 0x48), (4, 0x88), (8, 0xC8)):
            ins = one(bytes([0x48, 0x8B, 0x04, sib]))
            assert ins.operands[1].scale == scale


class TestWideningMoves:
    """Regression: the destination of movzx/movsx is opsize wide, the
    source r/m is the narrow width (a dead conditional once made this
    ambiguous in the decoder source)."""

    def test_movzx_r32_rm8_widths(self):
        ins = one(b"\x0f\xb6\xc8")           # movzx ecx, al
        dest, src = ins.operands
        assert dest.register.name == "ecx"
        assert dest.register.width == 32
        assert src.register.name == "al"
        assert src.register.width == 8

    def test_movzx_r64_rm16_widths(self):
        ins = one(b"\x48\x0f\xb7\xd1")       # movzx rdx, cx
        dest, src = ins.operands
        assert dest.register.width == 64
        assert src.register.width == 16

    def test_movsx_r32_rm8_memory_width(self):
        ins = one(b"\x0f\xbe\x03")           # movsx eax, byte [rbx]
        dest, src = ins.operands
        assert dest.register.width == 32
        assert src.width == 8                # memory access width in bits

    def test_movsxd_r64_rm32(self):
        ins = one(b"\x48\x63\xc1")           # movsxd rax, ecx
        dest, src = ins.operands
        assert dest.register.width == 64
        assert src.register.width == 32
