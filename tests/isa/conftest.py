"""ISA-test fixtures."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def decoder_corpus(all_cases):
    """Real generated text sections, one per compiler style."""
    return [bytes(case.text) for case in all_cases]
