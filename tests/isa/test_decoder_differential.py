"""Differential tests: the compiled engine against the interpretive oracle.

The generated module (``repro.isa._compiled``) must be *bit-identical*
to the interpretive decoder on every input: same ``Instruction`` fields
(including raw bytes, effect sets, and rarity) on success, and the same
error class on failure.  These tests are the permanent gate behind the
compiled hot path -- any table or grammar change that regenerates the
module has to keep passing them against the unchanged oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import _compiled, decode_interp, try_decode_interp
from repro.isa.compile_tables import GENERATED_PATH, generate
from repro.isa.errors import (InvalidOpcodeError, TooLongError,
                              TruncatedError)

#: Error classes in the engine's code order (0 invalid, 1 truncated,
#: 2 too long), mirroring ``_compiled.INVALID/TRUNCATED/TOO_LONG``.
ERROR_CLASSES = (InvalidOpcodeError, TruncatedError, TooLongError)

#: Bytes that steer random buffers into the decoder's interesting
#: corners: legacy prefixes, REX, the 0F escape, ModRM shapes that
#: demand SIB/disp bytes, and opcodes with every immediate width.
INTERESTING = bytes([
    0x66, 0xF0, 0x2E, 0x36, 0x3E, 0x26, 0x64, 0x65, 0xF2, 0xF3,
    0x40, 0x48, 0x4F, 0x0F, 0x00, 0x05, 0x0C, 0x24, 0x2D, 0x3C,
    0x63, 0x69, 0x6B, 0x80, 0x81, 0x83, 0x8D, 0x8F, 0x90, 0xB0,
    0xB8, 0xC2, 0xC6, 0xC7, 0xC8, 0xD0, 0xD2, 0xE8, 0xEB, 0xF6,
    0xF7, 0xFE, 0xFF, 0xA0, 0xA1, 0x04, 0x44, 0x84, 0xC4, 0x05,
])


def oracle_outcome(buf: bytes, offset: int = 0):
    """The oracle's result: an Instruction or the error-class index."""
    try:
        return decode_interp(buf, offset)
    except ERROR_CLASSES as error:
        for index, cls in enumerate(ERROR_CLASSES):
            if isinstance(error, cls):
                return index
        raise  # pragma: no cover - ERROR_CLASSES is exhaustive


def assert_identical(buf: bytes, offset: int = 0) -> None:
    expected = oracle_outcome(buf, offset)
    actual = _compiled.raw_decode(buf, offset)
    assert actual == expected, (buf.hex(), offset, expected, actual)
    via_try = _compiled.try_decode(buf, offset)
    if expected.__class__ is int:
        assert via_try is None, (buf.hex(), offset)
    else:
        assert via_try == expected, (buf.hex(), offset)
        assert try_decode_interp(buf, offset) == expected


class TestExhaustiveShortInputs:
    def test_every_single_byte(self):
        for b0 in range(256):
            assert_identical(bytes([b0]))

    def test_every_byte_pair(self):
        for b0 in range(256):
            for b1 in range(256):
                assert_identical(bytes([b0, b1]))


class TestFuzzedBuffers:
    @given(data=st.binary(min_size=0, max_size=24))
    @settings(max_examples=300, deadline=None)
    def test_random_buffers(self, data):
        assert_identical(data)

    @given(lead=st.lists(st.sampled_from(INTERESTING),
                         min_size=1, max_size=6),
           tail=st.binary(min_size=0, max_size=12))
    @settings(max_examples=300, deadline=None)
    def test_biased_lead_buffers(self, lead, tail):
        assert_identical(bytes(lead) + tail)

    @given(data=st.binary(min_size=1, max_size=18))
    @settings(max_examples=150, deadline=None)
    def test_every_truncation(self, data):
        # Truncation sweeps exercise every mid-instruction error site
        # (prefix scan, opcode fetch, ModRM/SIB, displacement, each
        # immediate width) and their error-class priorities.
        for cut in range(len(data) + 1):
            assert_identical(data[:cut])

    @given(data=st.binary(min_size=4, max_size=24),
           offset=st.integers(-2, 26))
    @settings(max_examples=200, deadline=None)
    def test_nonzero_and_out_of_range_offsets(self, data, offset):
        assert_identical(data, offset)


class TestCorpusSections:
    def test_every_offset_of_generated_sections(self, decoder_corpus):
        for text in decoder_corpus:
            for offset in range(len(text)):
                assert_identical(text, offset)

    def test_fifteen_byte_windows(self, decoder_corpus):
        # The ISSUE's truncation sweep: every 15-byte window of real
        # section bytes, decoded at its start, in both decoders.
        for text in decoder_corpus:
            for offset in range(0, len(text), 7):
                assert_identical(text[offset:offset + 15])

    def test_memoryview_input(self, decoder_corpus):
        text = decoder_corpus[0]
        view = memoryview(text)
        for offset in range(0, len(text), 11):
            assert_identical(view, offset)


class TestGeneratedModuleDrift:
    def test_checked_in_module_matches_compiler(self):
        """The in-repo twin of CI's ``compile_tables --check`` gate."""
        assert GENERATED_PATH.read_text() == generate(), (
            "src/repro/isa/_compiled.py is stale: regenerate with "
            "`python -m repro.isa.compile_tables`")
