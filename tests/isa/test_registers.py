"""Unit tests for register naming and identity."""

import pytest

from repro.isa.registers import (ARGUMENT_REGISTERS, CALLEE_SAVED,
                                 CALLER_SAVED, R8, RAX, RBP, RSP, Register,
                                 reg, register_by_name)


class TestRegisterNames:
    def test_64_bit_names(self):
        assert Register(RAX, 64).name == "rax"
        assert Register(RSP, 64).name == "rsp"
        assert Register(R8, 64).name == "r8"
        assert Register(15, 64).name == "r15"

    def test_32_bit_names(self):
        assert Register(RAX, 32).name == "eax"
        assert Register(R8, 32).name == "r8d"

    def test_16_bit_names(self):
        assert Register(RAX, 16).name == "ax"
        assert Register(R8, 16).name == "r8w"

    def test_8_bit_names(self):
        assert Register(RAX, 8).name == "al"
        assert Register(RSP, 8).name == "spl"
        assert Register(R8, 8).name == "r8b"

    def test_high_byte_names(self):
        assert Register(4, 8, high_byte=True).name == "ah"
        assert Register(7, 8, high_byte=True).name == "bh"

    def test_str_matches_name(self):
        r = Register(RBP, 64)
        assert str(r) == r.name == "rbp"


class TestRegisterValidation:
    def test_rejects_bad_number(self):
        with pytest.raises(ValueError):
            Register(16, 64)
        with pytest.raises(ValueError):
            Register(-1, 64)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Register(0, 24)

    def test_rejects_bad_high_byte(self):
        with pytest.raises(ValueError):
            Register(0, 8, high_byte=True)    # al has no high-byte form
        with pytest.raises(ValueError):
            Register(4, 64, high_byte=True)   # only 8-bit


class TestLookup:
    def test_round_trips_all_widths(self):
        for number in range(16):
            for width in (8, 16, 32, 64):
                r = Register(number, width)
                assert register_by_name(r.name) == r

    def test_high_byte_lookup(self):
        assert register_by_name("ch") == Register(5, 8, high_byte=True)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            register_by_name("xyz")

    def test_reg_shorthand(self):
        assert reg(RAX) == Register(RAX, 64)
        assert reg(RAX, 32) == Register(RAX, 32)


class TestConventions:
    def test_family_ignores_width(self):
        assert Register(RAX, 8).family == Register(RAX, 64).family

    def test_abi_sets_are_disjoint_where_expected(self):
        assert not set(CALLEE_SAVED) & set(CALLER_SAVED)

    def test_argument_registers_are_caller_saved(self):
        assert set(ARGUMENT_REGISTERS) <= set(CALLER_SAVED)
