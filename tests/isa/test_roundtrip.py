"""Property-based tests: encoder/decoder round trips and decoder totality."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import decode, try_decode
from repro.isa.encoder import Assembler, mem
from repro.isa.errors import DecodeError
from repro.isa.registers import RSP
from repro.isa.tables import MAX_INSTRUCTION_LENGTH

# Register numbers excluding the stack registers (their special ModRM
# encodings are covered by dedicated strategies below).
GENERAL = st.sampled_from([0, 1, 2, 3, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15])
ANY_REG = st.integers(min_value=0, max_value=15)
WIDTH = st.sampled_from([8, 16, 32, 64])
WIDE = st.sampled_from([16, 32, 64])
ALU = st.sampled_from(["add", "sub", "and", "or", "xor", "adc", "sbb",
                       "cmp"])
SHIFT = st.sampled_from(["shl", "shr", "sar", "rol", "ror"])
CONDITION = st.sampled_from(["e", "ne", "l", "ge", "le", "g", "b", "ae",
                             "s", "ns", "a", "be", "o", "no", "p", "np"])


def roundtrip_single(build) -> None:
    """Emit one instruction, decode it, check exact length coverage."""
    a = Assembler()
    build(a)
    raw = a.finish()
    ins = decode(raw, 0)
    assert ins.length == len(raw), (
        f"decode consumed {ins.length} of {len(raw)} bytes "
        f"({raw.hex()}: {ins})")


class TestSingleInstructionRoundTrip:
    @given(dst=ANY_REG, src=ANY_REG, width=WIDTH)
    def test_mov_rr(self, dst, src, width):
        roundtrip_single(lambda a: a.mov_rr(dst, src, width=width))

    @given(dst=ANY_REG, value=st.integers(-2 ** 31, 2 ** 31 - 1),
           width=st.sampled_from([32, 64]))
    def test_mov_ri(self, dst, value, width):
        if width == 32 and value < 0:
            value &= 0xFFFFFFFF
        roundtrip_single(lambda a: a.mov_ri(dst, value, width=width))

    @given(dst=ANY_REG, value=st.integers(0, 2 ** 64 - 1))
    def test_mov_ri64(self, dst, value):
        roundtrip_single(lambda a: a.mov_ri(dst, value, width=64))

    @given(op=ALU, dst=ANY_REG, src=ANY_REG, width=WIDTH)
    def test_alu_rr(self, op, dst, src, width):
        roundtrip_single(lambda a: a.alu_rr(op, dst, src, width=width))

    @given(op=ALU, dst=ANY_REG, value=st.integers(-2 ** 31, 2 ** 31 - 1),
           width=WIDE)
    def test_alu_ri(self, op, dst, value, width):
        if width == 16:
            value = value & 0x7FFF
        roundtrip_single(lambda a: a.alu_ri(op, dst, value, width=width))

    @given(op=SHIFT, dst=ANY_REG, amount=st.integers(1, 63), width=WIDE)
    def test_shift(self, op, dst, amount, width):
        roundtrip_single(lambda a: a.shift_ri(op, dst, amount, width=width))

    @given(reg=ANY_REG)
    def test_push_pop(self, reg):
        roundtrip_single(lambda a: a.push_r(reg))
        roundtrip_single(lambda a: a.pop_r(reg))

    @given(dst=ANY_REG, base=ANY_REG,
           disp=st.integers(-2 ** 31, 2 ** 31 - 1), width=WIDE)
    def test_mov_load_base_disp(self, dst, base, disp, width):
        roundtrip_single(
            lambda a: a.mov_rm(dst, mem(base=base, disp=disp), width=width))

    @given(dst=ANY_REG, base=ANY_REG, index=GENERAL,
           scale=st.sampled_from([1, 2, 4, 8]),
           disp=st.integers(-128, 127))
    def test_lea_full_addressing(self, dst, base, index, scale, disp):
        if index == RSP:
            return
        roundtrip_single(
            lambda a: a.lea(dst, mem(base=base, index=index, scale=scale,
                                     disp=disp)))

    @given(condition=CONDITION, dst=ANY_REG)
    def test_setcc(self, condition, dst):
        roundtrip_single(lambda a: a.setcc(condition, dst))

    @given(condition=CONDITION, dst=ANY_REG, src=ANY_REG, width=WIDE)
    def test_cmovcc(self, condition, dst, src, width):
        roundtrip_single(lambda a: a.cmovcc(condition, dst, src,
                                            width=width))

    @given(dst=ANY_REG, src=ANY_REG, src_width=st.sampled_from([8, 16]),
           width=st.sampled_from([32, 64]))
    def test_movzx(self, dst, src, src_width, width):
        roundtrip_single(lambda a: a.movzx(dst, src, src_width,
                                           width=width))


class TestProgramRoundTrip:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_generated_function_decodes_exactly(self, seed):
        """Whole generated functions decode at every ground-truth start."""
        import random

        from repro.binary.groundtruth import ByteKind
        from repro.synth.codegen import FunctionGenerator, RodataAllocator
        from repro.synth.styles import MSVC_LIKE
        from repro.synth.tracking import TrackedAssembler

        asm = TrackedAssembler()
        rng = random.Random(seed)
        generator = FunctionGenerator(asm, rng, MSVC_LIKE, "f",
                                      callees=[], rodata_allocator=
                                      RodataAllocator(0x100000))
        generator.emit()
        text = asm.finish()
        truth = asm.ground_truth()
        for start in truth.instruction_starts:
            ins = decode(text, start)
            for i in range(start + 1, start + ins.length):
                assert truth.kind_at(i) == ByteKind.INSN_INTERIOR


class TestDecoderTotality:
    @given(blob=st.binary(min_size=1, max_size=32))
    @settings(max_examples=500)
    def test_never_crashes(self, blob):
        """try_decode returns an Instruction or None, never raises."""
        ins = try_decode(blob, 0)
        if ins is not None:
            assert 1 <= ins.length <= min(len(blob),
                                          MAX_INSTRUCTION_LENGTH)
            assert ins.raw == blob[:ins.length]

    @given(blob=st.binary(min_size=16, max_size=64),
           offset=st.integers(0, 15))
    @settings(max_examples=200)
    def test_decode_raises_only_decode_errors(self, blob, offset):
        try:
            decode(blob, offset)
        except DecodeError:
            pass

    def test_random_bytes_usually_decode(self):
        """The property that makes the problem hard: most random byte
        offsets decode to *something* valid."""
        import random

        rng = random.Random(1234)
        blob = bytes(rng.randrange(256) for _ in range(4096))
        decodable = sum(1 for o in range(len(blob) - 16)
                        if try_decode(blob, o) is not None)
        rate = decodable / (len(blob) - 16)
        assert rate > 0.55, f"decode rate only {rate:.2f}"
