"""Shared fixtures: small generated binaries and trained models.

Generation and model training are comparatively expensive, so anything
reusable is session-scoped.  Evaluation fixtures use the small seeds;
models come from :func:`repro.stats.training.default_models`, which
trains on dedicated seeds, preserving the train/test split even in
tests.
"""

from __future__ import annotations

import pytest

from repro.core import Disassembler
from repro.stats.training import default_models
from repro.superset import Superset
from repro.synth import (BinarySpec, CLANG_LIKE, GCC_LIKE, MSVC_LIKE,
                         generate_binary)


@pytest.fixture(scope="session")
def msvc_case():
    return generate_binary(BinarySpec(name="msvc-test", style=MSVC_LIKE,
                                      function_count=20, seed=7))


@pytest.fixture(scope="session")
def gcc_case():
    return generate_binary(BinarySpec(name="gcc-test", style=GCC_LIKE,
                                      function_count=20, seed=7))


@pytest.fixture(scope="session")
def clang_case():
    return generate_binary(BinarySpec(name="clang-test", style=CLANG_LIKE,
                                      function_count=20, seed=7))


@pytest.fixture(scope="session")
def all_cases(msvc_case, gcc_case, clang_case):
    return [msvc_case, gcc_case, clang_case]


@pytest.fixture(scope="session")
def models():
    return default_models()


@pytest.fixture(scope="session")
def disassembler(models):
    return Disassembler(models=models)


@pytest.fixture(scope="session")
def msvc_superset(msvc_case):
    return Superset.build(msvc_case.text)
