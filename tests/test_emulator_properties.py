"""Differential property tests: emulator semantics vs Python arithmetic.

Hypothesis drives random operand values through assembled snippets; the
emulator's results must match Python's own 64/32-bit arithmetic, and
every conditional branch must agree with the corresponding Python
comparison.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator import Emulator
from repro.isa import Assembler
from repro.isa.registers import RAX, RCX, RDX

MASK64 = (1 << 64) - 1
U64 = st.integers(0, MASK64)
U32 = st.integers(0, 0xFFFFFFFF)


def run_snippet(build):
    a = Assembler()
    build(a)
    a.ret()
    return Emulator(a.finish()).run(0)


class TestArithmeticDifferential:
    @given(a=U64, b=U64)
    @settings(max_examples=60, deadline=None)
    def test_add64(self, a, b):
        result = run_snippet(lambda asm: (
            asm.mov_ri(RAX, a if a < 2 ** 63 else a - 2 ** 64),
            asm.mov_ri(RCX, b if b < 2 ** 63 else b - 2 ** 64),
            asm.alu_rr("add", RAX, RCX)))
        assert result.return_value == (a + b) & MASK64

    @given(a=U64, b=U64)
    @settings(max_examples=60, deadline=None)
    def test_sub64(self, a, b):
        result = run_snippet(lambda asm: (
            asm.mov_ri(RAX, a if a < 2 ** 63 else a - 2 ** 64),
            asm.mov_ri(RCX, b if b < 2 ** 63 else b - 2 ** 64),
            asm.alu_rr("sub", RAX, RCX)))
        assert result.return_value == (a - b) & MASK64

    @given(a=U32, b=U32)
    @settings(max_examples=60, deadline=None)
    def test_logic32_zero_extends(self, a, b):
        for op, fn in (("and", lambda x, y: x & y),
                       ("or", lambda x, y: x | y),
                       ("xor", lambda x, y: x ^ y)):
            result = run_snippet(lambda asm: (
                asm.mov_ri(RAX, -1),
                asm.mov_ri(RAX, a - 2 ** 32 if a >= 2 ** 31 else a,
                           width=32),
                asm.mov_ri(RCX, b - 2 ** 32 if b >= 2 ** 31 else b,
                           width=32),
                asm.alu_rr(op, RAX, RCX, width=32)))
            assert result.return_value == fn(a, b), op

    @given(a=U32, count=st.integers(0, 31))
    @settings(max_examples=60, deadline=None)
    def test_shl32(self, a, count):
        if count == 0:
            return
        result = run_snippet(lambda asm: (
            asm.mov_ri(RAX, a - 2 ** 32 if a >= 2 ** 31 else a, width=32),
            asm.shift_ri("shl", RAX, count, width=32)))
        assert result.return_value == (a << count) & 0xFFFFFFFF

    @given(a=st.integers(-2 ** 31, 2 ** 31 - 1),
           b=st.integers(-2 ** 15, 2 ** 15 - 1))
    @settings(max_examples=60, deadline=None)
    def test_imul(self, a, b):
        result = run_snippet(lambda asm: (
            asm.mov_ri(RCX, a),
            asm.imul_rri(RAX, RCX, b)))
        assert result.return_value == (a * b) & MASK64


class TestConditionDifferential:
    @given(a=st.integers(-2 ** 31, 2 ** 31 - 1),
           b=st.integers(-2 ** 31, 2 ** 31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_signed_and_unsigned_comparisons(self, a, b):
        checks = {
            "e": a == b, "ne": a != b,
            "l": a < b, "ge": a >= b, "le": a <= b, "g": a > b,
            "b": (a & MASK64) < (b & MASK64),
            "ae": (a & MASK64) >= (b & MASK64),
        }
        for condition, expected in checks.items():
            result = run_snippet(lambda asm: (
                asm.mov_ri(RAX, a),
                asm.mov_ri(RCX, b),
                asm.alu_rr("cmp", RAX, RCX),
                asm.setcc(condition, RDX),
                asm.movzx(RAX, RDX, 8, width=32)))
            assert result.return_value == int(expected), condition

    @given(a=st.integers(-2 ** 63, 2 ** 63 - 1))
    @settings(max_examples=60, deadline=None)
    def test_test_sets_sign_and_zero(self, a):
        for condition, expected in (("e", a == 0), ("s", a < 0)):
            result = run_snippet(lambda asm: (
                asm.mov_ri(RAX, a),
                asm.test_rr(RAX, RAX),
                asm.setcc(condition, RDX),
                asm.movzx(RAX, RDX, 8, width=32)))
            assert result.return_value == int(expected), (condition, a)


class TestProgramEquivalence:
    @given(seed=st.integers(0, 150))
    @settings(max_examples=10, deadline=None)
    def test_rewritten_binary_equivalent(self, seed):
        """Rewriting preserves observable behavior on random binaries."""
        from repro.core import Disassembler
        from repro.rewrite import rewrite_binary
        from repro.stats.training import default_models
        from repro.synth import BinarySpec, MSVC_LIKE, generate_binary

        case = generate_binary(BinarySpec(name="eq", style=MSVC_LIKE,
                                          function_count=8, seed=seed))
        disassembler = Disassembler(models=default_models())
        rich = disassembler.disassemble_rich(case)
        rewritten = rewrite_binary(rich, case.binary)
        original = Emulator(case).run(0, max_steps=30_000)
        copy = Emulator(rewritten.binary).run(rewritten.binary.entry,
                                              max_steps=45_000)
        if original.stop_reason == "steps":
            assert copy.steps >= original.steps
        else:
            assert copy.stop_reason == original.stop_reason
            assert copy.return_value == original.return_value
