"""Tests for compiler style definitions."""

import dataclasses

import pytest

from repro.synth.corpus import density_style
from repro.synth.styles import (CLANG_LIKE, GCC_LIKE, MSVC_LIKE, STYLES,
                                CompilerStyle, style_by_name)


class TestPresets:
    def test_registry_contains_all_presets(self):
        assert set(STYLES) == {"gcc-like", "clang-like", "msvc-like"}

    def test_lookup(self):
        assert style_by_name("msvc-like") is MSVC_LIKE
        with pytest.raises(KeyError, match="unknown"):
            style_by_name("icc-like")

    def test_gcc_keeps_text_clean(self):
        assert not GCC_LIKE.tables_in_text
        assert GCC_LIKE.literal_pool_prob == 0.0
        assert GCC_LIKE.string_in_text_prob == 0.0

    def test_msvc_embeds_everything(self):
        assert MSVC_LIKE.tables_in_text
        assert MSVC_LIKE.table_entry_kind == "abs64"
        assert MSVC_LIKE.padding_byte == 0xCC

    def test_clang_uses_relative_tables(self):
        assert CLANG_LIKE.table_entry_kind == "rel32"


class TestValidation:
    def test_bad_entry_kind(self):
        with pytest.raises(ValueError, match="entry kind"):
            CompilerStyle(name="x", table_entry_kind="abs32")

    def test_bad_alignment(self):
        with pytest.raises(ValueError, match="power of two"):
            CompilerStyle(name="x", function_alignment=12)

    def test_styles_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MSVC_LIKE.name = "other"


class TestDensityScaling:
    def test_zero_density_is_clean(self):
        style = density_style(MSVC_LIKE, 0.0)
        assert not style.tables_in_text
        assert style.literal_pool_prob == 0.0
        assert style.max_switches_per_function == 0

    def test_full_density(self):
        style = density_style(MSVC_LIKE, 1.0)
        assert style.tables_in_text
        assert style.literal_pool_prob == 1.0
        assert style.max_switches_per_function == 4

    def test_density_bounds(self):
        with pytest.raises(ValueError):
            density_style(MSVC_LIKE, 1.5)
        with pytest.raises(ValueError):
            density_style(MSVC_LIKE, -0.1)

    def test_density_monotone_in_knobs(self):
        low = density_style(MSVC_LIKE, 0.1)
        high = density_style(MSVC_LIKE, 0.9)
        assert low.literal_pool_prob < high.literal_pool_prob
        assert low.string_in_text_prob < high.string_in_text_prob
