"""Tests for whole-binary generation."""

import pytest

from repro.binary.groundtruth import ByteKind
from repro.isa import decode, try_decode
from repro.isa.opcodes import FlowKind
from repro.synth import (BinarySpec, MSVC_LIKE, generate_binary,
                         generate_corpus)


class TestGroundTruthConsistency:
    def test_every_true_instruction_decodes(self, all_cases):
        for case in all_cases:
            for start in case.truth.instruction_starts:
                ins = try_decode(case.text, start)
                assert ins is not None, f"{case.name}: {start:#x}"
                for i in range(start + 1, start + ins.length):
                    assert case.truth.kind_at(i) == ByteKind.INSN_INTERIOR

    def test_instructions_do_not_overlap(self, all_cases):
        for case in all_cases:
            covered_until = -1
            for start in sorted(case.truth.instruction_starts):
                assert start >= covered_until
                covered_until = start + decode(case.text, start).length

    def test_code_never_falls_into_data(self, all_cases):
        """A real instruction that falls through lands on code.

        The one legitimate exception is a call to a noreturn function,
        whose continuation may be an inline data blob.
        """
        for case in all_cases:
            truth = case.truth
            for start in truth.instruction_starts:
                ins = decode(case.text, start)
                if not ins.falls_through or ins.end >= truth.size:
                    continue
                if ins.flow in (FlowKind.TRAP, FlowKind.CALL):
                    continue
                kind = truth.kind_at(ins.end)
                assert kind in (ByteKind.INSN_START, ByteKind.PADDING), (
                    f"{case.name}: {start:#x} falls into {kind.name}")

    def test_direct_branches_land_on_instruction_starts(self, all_cases):
        for case in all_cases:
            starts = case.truth.instruction_starts
            for start in starts:
                ins = decode(case.text, start)
                target = ins.branch_target
                if target is not None and 0 <= target < case.truth.size:
                    assert target in starts, (
                        f"{case.name}: {start:#x} -> {target:#x}")

    def test_functions_cover_entries(self, all_cases):
        for case in all_cases:
            starts = case.truth.instruction_starts
            for function in case.truth.functions:
                assert function.entry in starts


class TestStyleProperties:
    def test_gcc_like_has_no_embedded_data(self, gcc_case):
        assert gcc_case.truth.data_bytes == 0
        assert not gcc_case.truth.jump_tables

    def test_msvc_like_has_embedded_tables(self, msvc_case):
        assert msvc_case.truth.data_bytes > 0
        assert msvc_case.truth.jump_tables

    def test_msvc_padding_is_int3(self, msvc_case):
        for start, end in msvc_case.truth.padding_regions():
            region = msvc_case.text[start:end]
            assert set(region) <= {0xCC}, f"padding at {start:#x}"

    def test_function_alignment(self, all_cases):
        for case in all_cases:
            for function in case.truth.functions:
                assert function.entry % 16 == 0

    def test_gcc_tables_live_in_rodata(self, gcc_case):
        names = [s.name for s in gcc_case.binary.sections]
        assert ".rodata" in names
        rodata = gcc_case.binary.section(".rodata")
        assert rodata.size > 0


class TestDeterminismAndValidation:
    def test_same_seed_same_binary(self):
        spec = BinarySpec(name="det", style=MSVC_LIKE, function_count=10,
                          seed=11)
        a = generate_binary(spec)
        b = generate_binary(spec)
        assert a.text == b.text
        assert a.truth.to_json() == b.truth.to_json()

    def test_different_seeds_differ(self):
        a = generate_binary(BinarySpec(name="a", function_count=10, seed=1))
        b = generate_binary(BinarySpec(name="b", function_count=10, seed=2))
        assert a.text != b.text

    def test_rejects_tiny_function_count(self):
        with pytest.raises(ValueError):
            BinarySpec(name="x", function_count=1)

    def test_entry_point_is_offset_zero_function(self, all_cases):
        for case in all_cases:
            assert case.binary.entry == 0
            assert 0 in case.truth.function_entries

    def test_corpus_covers_styles_and_seeds(self):
        cases = generate_corpus(seeds=(5,), function_count=6)
        assert len(cases) == 3
        assert sorted(c.name for c in cases) == [
            "clang-like-s5", "gcc-like-s5", "msvc-like-s5"]


class TestCallGraph:
    def test_all_functions_reachable_via_some_mechanism(self, msvc_case):
        """Direct calls + tables must reference every non-entry function."""
        text = msvc_case.text
        truth = msvc_case.truth
        starts = truth.instruction_starts
        referenced = {0}
        for start in starts:
            ins = decode(text, start)
            if ins.flow in (FlowKind.CALL, FlowKind.JUMP):
                target = ins.branch_target
                if target is not None:
                    referenced.add(target)
        # 8-byte table entries (jump or pointer tables).
        for table_start, table_end in truth.jump_tables:
            for o in range(table_start, table_end - 7, 8):
                referenced.add(int.from_bytes(text[o:o + 8], "little"))
        # rodata pointer tables.
        for section in msvc_case.binary.sections:
            if section.name == ".rodata":
                data = section.data
                for o in range(0, len(data) - 7, 8):
                    referenced.add(int.from_bytes(data[o:o + 8], "little"))
        unreferenced = truth.function_entries - referenced
        assert not unreferenced, f"orphan functions: {sorted(unreferenced)}"
