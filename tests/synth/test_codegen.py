"""Unit tests for the function generator's structural guarantees."""

import random

import pytest

from repro.isa import decode
from repro.isa.opcodes import FlowKind
from repro.synth.codegen import FunctionGenerator, RodataAllocator
from repro.synth.styles import MSVC_LIKE
from repro.synth.tracking import TrackedAssembler


def generate(seed, *, style=MSVC_LIKE, callees=(), **kwargs):
    asm = TrackedAssembler()
    generator = FunctionGenerator(asm, random.Random(seed), style, "fn0000",
                                  list(callees),
                                  rodata_allocator=RodataAllocator(0x100000),
                                  **kwargs)
    result = generator.emit()
    text = asm.finish()
    truth = asm.ground_truth()
    return text, truth, result


def decoded(text, truth):
    return [decode(text, s) for s in sorted(truth.instruction_starts)]


class TestTermination:
    @pytest.mark.parametrize("seed", range(12))
    def test_generated_function_terminates_in_emulator(self, seed):
        from repro.emulator import Emulator
        text, truth, _ = generate(seed)
        result = Emulator(text).run(0, max_steps=2_000_000)
        assert result.stop_reason in ("exit", "halt", "trap"), (
            seed, result.stop_reason)
        assert not result.executed_set - truth.instruction_starts

    def test_loop_counters_never_clobbered(self):
        """Structural check: between a counter init and its dec/jne, no
        instruction writes the counter register (calls excluded by the
        callee-saved/no-calls policy)."""
        for seed in range(20):
            text, truth, _ = generate(seed)
            instructions = decoded(text, truth)
            for i, ins in enumerate(instructions):
                if ins.mnemonic != "dec" or i + 1 >= len(instructions):
                    continue
                follower = instructions[i + 1]
                if follower.display_mnemonic != "jne":
                    continue
                counter = next(iter(ins.writes))
                # Walk back to the counter's init; no clobbers between.
                target = follower.branch_target
                body = [x for x in instructions
                        if target <= x.offset < ins.offset]
                clobbers = [x for x in body
                            if counter in x.writes
                            and x.flow not in (FlowKind.CALL,
                                               FlowKind.ICALL)]
                assert not clobbers, (seed, hex(ins.offset), clobbers)


class TestNoreturnFunctions:
    def test_noreturn_function_never_rets(self):
        text, truth, _ = generate(3, is_noreturn=True)
        mnemonics = {i.mnemonic for i in decoded(text, truth)}
        assert "ret" not in mnemonics
        assert mnemonics & {"hlt", "ud2"}

    def test_must_call_noreturn_emits_guarded_call(self):
        asm = TrackedAssembler()
        generator = FunctionGenerator(
            asm, random.Random(1), MSVC_LIKE, "fn0000", [],
            rodata_allocator=RodataAllocator(0x100000),
            must_call_noreturn=["panic"])
        generator.emit()
        asm.bind("panic")
        asm.ud2()
        text = asm.finish()
        calls = [decode(text, s) for s in asm.ground_truth()
                 .instruction_starts
                 if decode(text, s).flow is FlowKind.CALL]
        assert any(c.branch_target == asm.label_offset("panic")
                   for c in calls)


class TestStackArguments:
    def test_stack_arg_function_uses_ret_imm(self):
        for seed in range(10):
            text, truth, _ = generate(seed, stack_args=2)
            rets = [i for i in decoded(text, truth)
                    if i.mnemonic == "ret"]
            assert rets
            assert all(i.operands and i.operands[0].value == 16
                       for i in rets), seed

    def test_callers_push_stack_args(self):
        asm = TrackedAssembler()
        generator = FunctionGenerator(
            asm, random.Random(2), MSVC_LIKE, "fn0000", ["callee"],
            rodata_allocator=RodataAllocator(0x100000),
            callee_stack_args={"callee": 3})
        generator.emit()
        asm.bind("callee")
        asm.ret_imm(24)
        text = asm.finish()
        instructions = [decode(text, s)
                        for s in sorted(asm.ground_truth()
                                        .instruction_starts)]
        for i, ins in enumerate(instructions):
            if ins.flow is FlowKind.CALL and \
                    ins.branch_target == asm.label_offset("callee"):
                pushes = [x for x in instructions[max(0, i - 4):i]
                          if x.mnemonic == "push" and x.operands
                          and not hasattr(x.operands[0], "register")]
                assert len(pushes) == 3
                break
        else:
            pytest.fail("no call to the stack-arg callee")


class TestSparseSwitches:
    def test_tables_may_contain_duplicate_entries(self):
        """Across seeds, at least one generated table has a repeated
        target (a hole dispatching to the default block)."""
        found = False
        for seed in range(25):
            asm = TrackedAssembler()
            generator = FunctionGenerator(
                asm, random.Random(seed), MSVC_LIKE, "fn0000", [],
                rodata_allocator=RodataAllocator(0x100000))
            result = generator.emit()
            text = asm.finish()
            for start, end in result.jump_tables:
                entries = [int.from_bytes(text[o:o + 8], "little")
                           for o in range(start, end - 7, 8)]
                if len(entries) != len(set(entries)):
                    found = True
        assert found
