"""Tests for the ground-truth-tracking assembler wrapper."""

from repro.binary.groundtruth import ByteKind
from repro.isa.registers import RAX, RBP, RSP
from repro.synth.tracking import MarkKind, TrackedAssembler


class TestMarkRecording:
    def test_instruction_marks(self):
        asm = TrackedAssembler()
        asm.push_r(RBP)
        asm.mov_rr(RBP, RSP)
        assert [m.kind for m in asm.marks] == [MarkKind.INSN] * 2
        assert asm.marks[0].start == 0 and asm.marks[0].end == 1
        assert asm.marks[1].start == 1 and asm.marks[1].end == 4

    def test_data_marks(self):
        asm = TrackedAssembler()
        asm.db(b"hello")
        asm.dq(42)
        kinds = [m.kind for m in asm.marks]
        assert kinds == [MarkKind.DATA, MarkKind.DATA]

    def test_padding_marks(self):
        asm = TrackedAssembler()
        asm.ret()
        asm.align(8, b"\xcc")
        assert asm.marks[-1].kind == MarkKind.PADDING
        assert asm.marks[-1].end == 8

    def test_bind_emits_no_mark(self):
        asm = TrackedAssembler()
        asm.bind("x")
        assert not asm.marks

    def test_label_offset(self):
        asm = TrackedAssembler()
        asm.nop(4)
        asm.bind("here")
        assert asm.label_offset("here") == 4
        assert asm.has_label("here")
        assert not asm.has_label("elsewhere")


class TestGroundTruthConversion:
    def test_labels(self):
        asm = TrackedAssembler()
        asm.mov_ri(RAX, 1, width=32)   # 5-byte instruction
        asm.db(b"\x01\x02")
        asm.align(8, b"\xcc")
        asm.ret()
        asm.finish()
        truth = asm.ground_truth()
        assert truth.kind_at(0) == ByteKind.INSN_START
        assert truth.kind_at(4) == ByteKind.INSN_INTERIOR
        assert truth.kind_at(5) == ByteKind.DATA
        assert truth.kind_at(7) == ByteKind.PADDING
        assert truth.kind_at(8) == ByteKind.INSN_START
        assert truth.size == 9
